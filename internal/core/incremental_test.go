package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"copmecs/internal/graph"
	"copmecs/internal/mec"
	"copmecs/internal/netgen"
)

// solveChurn is a seeded delta generator for the SolveDelta property tests:
// weight drift, edge churn, and node churn strong enough to split and merge
// components across a chained sequence.
func solveChurn(rng *rand.Rand, g *graph.Graph) *graph.Delta {
	d := &graph.Delta{}
	ids := g.Nodes()
	edges := g.Edges()
	seen := map[[2]graph.NodeID]bool{}
	for i := 0; i < rng.Intn(3) && len(edges) > 0; i++ {
		e := edges[rng.Intn(len(edges))]
		if seen[[2]graph.NodeID{e.U, e.V}] {
			continue
		}
		seen[[2]graph.NodeID{e.U, e.V}] = true
		d.RemoveEdges = append(d.RemoveEdges, graph.EdgePair{U: e.U, V: e.V})
	}
	removed := map[graph.NodeID]bool{}
	if rng.Intn(3) == 0 && len(ids) > 6 {
		id := ids[rng.Intn(len(ids))]
		removed[id] = true
		d.RemoveNodes = append(d.RemoveNodes, id)
	}
	if rng.Intn(3) == 0 {
		id := graph.NodeID(500000 + rng.Intn(64))
		if !g.HasNode(id) {
			d.AddNodes = append(d.AddNodes, graph.NodeDelta{ID: id, Weight: 1 + rng.Float64()*40})
		}
	}
	alive := make([]graph.NodeID, 0, len(ids)+1)
	for _, id := range ids {
		if !removed[id] {
			alive = append(alive, id)
		}
	}
	for _, nd := range d.AddNodes {
		alive = append(alive, nd.ID)
	}
	for i := 0; i < rng.Intn(4) && len(alive) > 1; i++ {
		u, v := alive[rng.Intn(len(alive))], alive[rng.Intn(len(alive))]
		if u == v {
			continue
		}
		d.SetEdges = append(d.SetEdges, graph.EdgeDelta{U: u, V: v, Weight: 0.5 + rng.Float64()*15})
	}
	for i := 0; i < rng.Intn(2) && len(alive) > 0; i++ {
		d.SetNodeWeights = append(d.SetNodeWeights,
			graph.NodeDelta{ID: alive[rng.Intn(len(alive))], Weight: 1 + rng.Float64()*80})
	}
	return d
}

// TestPropertySolveDeltaMatchesColdSolve is the tentpole invariant: the
// default (exact) SolveDelta is bit-for-bit the same solution a from-scratch
// Solve produces on the patched graph, across chained add/remove/weight-drift
// sequences that split and merge components.
func TestPropertySolveDeltaMatchesColdSolve(t *testing.T) {
	f := func(seed int64, nn, uu, flags uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%120) + 30
		g, err := netgen.Generate(netgen.Config{Nodes: n, Edges: n * 2, Components: 3, Seed: seed})
		if err != nil {
			return true
		}
		opts := Options{Workers: 1 + int(flags%2)*3}
		if flags&4 != 0 {
			opts.DisableCompression = true
		}
		if flags&8 != 0 {
			opts.MaxParts = 3
		}
		users := make([]UserInput, int(uu%3)+1)
		for i := range users {
			users[i] = UserInput{Graph: g, FixedLocalWork: float64(i) * 3}
		}
		sess := NewSession(opts)
		// Prime incremental state for the base graph via the cold capture
		// path, then chain deltas, comparing each against a cold solve.
		if _, err := sess.Solve(context.Background(), users); err != nil {
			t.Logf("prime solve: %v", err)
			return false
		}
		cur := g
		for step := 0; step < 3; step++ {
			for i := range users {
				users[i].Graph = cur
			}
			d := solveChurn(rng, cur)
			// Raise the fallback threshold so small graphs exercise the
			// incremental path rather than constantly falling back.
			next, sol, ds, err := sess.SolveDelta(context.Background(), cur, d, users, DeltaOptions{MaxTouchedFraction: 0.95})
			if err != nil {
				t.Logf("SolveDelta step %d: %v", step, err)
				return false
			}
			if step > 0 && ds.ColdFallback && ds.FallbackReason == "no cached state for base graph" {
				t.Logf("step %d lost incremental state", step)
				return false
			}
			coldUsers := make([]UserInput, len(users))
			copy(coldUsers, users)
			for i := range coldUsers {
				coldUsers[i].Graph = next
			}
			cold, err := Solve(context.Background(), coldUsers, opts)
			if err != nil {
				t.Logf("cold solve step %d: %v", step, err)
				return false
			}
			if !solutionsIdentical(t, sol, cold) {
				t.Logf("step %d diverged (incremental=%v clean=%d dirty=%d)", step, ds.Incremental, ds.CleanComponents, ds.DirtyComponents)
				return false
			}
			cur = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolveDeltaFirstCallIsColdCapture(t *testing.T) {
	g, err := netgen.Generate(netgen.Config{Nodes: 80, Edges: 160, Components: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(Options{})
	users := []UserInput{{Graph: g}}
	d := &graph.Delta{SetNodeWeights: []graph.NodeDelta{{ID: g.Nodes()[0], Weight: 99}}}
	next, _, ds, err := sess.SolveDelta(context.Background(), g, d, users, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.ColdFallback || ds.Incremental {
		t.Errorf("first delta against unseen base: stats %+v, want cold fallback", ds)
	}
	// The cold path captured state for the mutated graph: the next delta
	// goes incremental.
	d2 := &graph.Delta{SetNodeWeights: []graph.NodeDelta{{ID: next.Nodes()[1], Weight: 44}}}
	_, _, ds2, err := sess.SolveDelta(context.Background(), next, d2, users, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ds2.Incremental || ds2.ColdFallback {
		t.Errorf("chained delta: stats %+v, want incremental", ds2)
	}
	if ds2.DirtyComponents != 1 {
		t.Errorf("weight-only delta dirtied %d components, want 1", ds2.DirtyComponents)
	}
	if ds2.CleanComponents < 1 {
		t.Errorf("weight-only delta left %d clean components, want ≥ 1", ds2.CleanComponents)
	}
}

func TestSolveDeltaColdFallbackOnLargeDelta(t *testing.T) {
	g, err := netgen.Generate(netgen.Config{Nodes: 60, Edges: 120, Components: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(Options{})
	users := []UserInput{{Graph: g}}
	if _, err := sess.Solve(context.Background(), users); err != nil {
		t.Fatal(err)
	}
	// Rewrite a third of the edges — far beyond the default threshold.
	d := &graph.Delta{}
	for i, e := range g.Edges() {
		if i%3 == 0 {
			d.SetEdges = append(d.SetEdges, graph.EdgeDelta{U: e.U, V: e.V, Weight: e.Weight * 2})
		}
	}
	next, sol, ds, err := sess.SolveDelta(context.Background(), g, d, users, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.ColdFallback {
		t.Errorf("stats %+v, want cold fallback above threshold", ds)
	}
	coldUsers := []UserInput{{Graph: next}}
	cold, err := Solve(context.Background(), coldUsers, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !solutionsIdentical(t, sol, cold) {
		t.Error("cold-fallback SolveDelta differs from from-scratch Solve")
	}
}

func TestSolveDeltaWarmStartConverges(t *testing.T) {
	// Warm start is documented non-exact; it must still produce a valid
	// solution over the same parts with an objective in the same range.
	g, err := netgen.Generate(netgen.Config{Nodes: 400, Edges: 900, Components: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(Options{})
	users := []UserInput{{Graph: g}, {Graph: g}}
	// Prime incremental state through the cold capture path.
	base, _, _, err := sess.SolveDelta(context.Background(), g, &graph.Delta{}, users, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	users = []UserInput{{Graph: base}, {Graph: base}}
	d := &graph.Delta{}
	e := base.Edges()[0]
	d.SetEdges = append(d.SetEdges, graph.EdgeDelta{U: e.U, V: e.V, Weight: e.Weight * 3})
	next, warm, ds, err := sess.SolveDelta(context.Background(), base, d, users, DeltaOptions{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Incremental {
		t.Fatalf("stats %+v, want incremental", ds)
	}
	cold, err := Solve(context.Background(), []UserInput{{Graph: next}, {Graph: next}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Eval.Objective <= 0 {
		t.Errorf("warm objective %v not positive", warm.Eval.Objective)
	}
	ratio := warm.Eval.Objective / cold.Eval.Objective
	if ratio > 1.25 || ratio < 0.75 {
		t.Errorf("warm objective %v vs cold %v (ratio %.3f)", warm.Eval.Objective, cold.Eval.Objective, ratio)
	}
	if len(warm.Parts) != len(cold.Parts) {
		t.Errorf("warm parts %d vs cold %d", len(warm.Parts), len(cold.Parts))
	}
}

func TestSolveDeltaWithParamsMatchesColdSolveWithParams(t *testing.T) {
	// Per-call params ride through the incremental path exactly as they do
	// through SolveWithParams: same cached cuts, params enter at greedy.
	g, err := netgen.Generate(netgen.Config{Nodes: 90, Edges: 180, Components: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	params := mec.Defaults()
	params.ServerCapacity *= 2.5
	params.Bandwidth *= 0.5
	sess := NewSession(Options{})
	users := []UserInput{{Graph: g}}
	// Prime incremental state through the cold capture path.
	base, _, _, err := sess.SolveDelta(context.Background(), g, &graph.Delta{}, users, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	users = []UserInput{{Graph: base}}
	e := base.Edges()[0]
	d := &graph.Delta{SetEdges: []graph.EdgeDelta{{U: e.U, V: e.V, Weight: e.Weight + 7}}}
	next, sol, ds, err := sess.SolveDeltaWithParams(context.Background(), base, d, users, DeltaOptions{MaxTouchedFraction: 0.95}, params)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Incremental {
		t.Fatalf("stats %+v, want incremental", ds)
	}
	cold, err := Solve(context.Background(), []UserInput{{Graph: next}}, Options{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if !solutionsIdentical(t, sol, cold) {
		t.Error("SolveDeltaWithParams differs from cold Solve under the same params")
	}
	// The params actually took effect: defaults give a different objective.
	defSol, err := Solve(context.Background(), []UserInput{{Graph: next}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Eval.Objective == defSol.Eval.Objective {
		t.Error("overridden params produced the default objective; override ignored")
	}
}

func TestSolveDeltaInvalidDelta(t *testing.T) {
	g, err := netgen.Generate(netgen.Config{Nodes: 30, Edges: 60, Components: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(Options{})
	d := &graph.Delta{RemoveNodes: []graph.NodeID{999999}}
	if _, _, _, err := sess.SolveDelta(context.Background(), g, d, []UserInput{{Graph: g}}, DeltaOptions{}); err == nil {
		t.Error("SolveDelta accepted a delta removing a missing node")
	}
	if g.HasNode(999999) {
		t.Error("base graph mutated")
	}
}

func TestSolveDeltaDoesNotMutateBase(t *testing.T) {
	g, err := netgen.Generate(netgen.Config{Nodes: 40, Edges: 80, Components: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	before := g.Clone()
	sess := NewSession(Options{})
	if _, err := sess.Solve(context.Background(), []UserInput{{Graph: g}}); err != nil {
		t.Fatal(err)
	}
	id := g.Nodes()[3]
	d := &graph.Delta{SetNodeWeights: []graph.NodeDelta{{ID: id, Weight: 123}}}
	next, _, _, err := sess.SolveDelta(context.Background(), g, d, []UserInput{{Graph: g}}, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(before) {
		t.Error("SolveDelta mutated the base graph")
	}
	if w, _ := next.NodeWeight(id); w != 123 {
		t.Errorf("mutated graph weight %v, want 123", w)
	}
}
