package core

import (
	"context"
	"math"
	"testing"

	"copmecs/internal/mec"
	"copmecs/internal/netgen"
)

func TestSessionMatchesSolve(t *testing.T) {
	g, err := netgen.Generate(netgen.Config{Nodes: 120, Edges: 360, Components: 3, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	users := []UserInput{{Graph: g}, {Graph: g}, {Graph: g}}
	sess := NewSession(Options{})
	fromSession, err := sess.Solve(context.Background(), users)
	if err != nil {
		t.Fatalf("Session.Solve: %v", err)
	}
	direct, err := Solve(context.Background(), users, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fromSession.Eval.Objective-direct.Eval.Objective) > 1e-9*(1+direct.Eval.Objective) {
		t.Errorf("session %v vs direct %v", fromSession.Eval.Objective, direct.Eval.Objective)
	}
	if sess.CachedGraphs() != 1 {
		t.Errorf("CachedGraphs = %d, want 1", sess.CachedGraphs())
	}
}

func TestSessionReusesAcrossPopulationChanges(t *testing.T) {
	gA, err := netgen.Generate(netgen.Config{Nodes: 90, Edges: 270, Components: 2, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	gB, err := netgen.Generate(netgen.Config{Nodes: 110, Edges: 330, Components: 2, Seed: 54})
	if err != nil {
		t.Fatal(err)
	}
	params := mec.Defaults()
	params.ServerCapacity = 1500
	sess := NewSession(Options{Params: params})

	// First wave: 4 users on app A.
	wave1 := []UserInput{{Graph: gA}, {Graph: gA}, {Graph: gA}, {Graph: gA}}
	sol1, err := sess.Solve(context.Background(), wave1)
	if err != nil {
		t.Fatal(err)
	}
	if sess.CachedGraphs() != 1 {
		t.Fatalf("after wave1 CachedGraphs = %d", sess.CachedGraphs())
	}

	// Second wave: 2 users leave, 3 on app B join.
	wave2 := []UserInput{{Graph: gA}, {Graph: gA}, {Graph: gB}, {Graph: gB}, {Graph: gB}}
	sol2, err := sess.Solve(context.Background(), wave2)
	if err != nil {
		t.Fatal(err)
	}
	if sess.CachedGraphs() != 2 {
		t.Fatalf("after wave2 CachedGraphs = %d", sess.CachedGraphs())
	}

	// The cached solve equals the cold solve for the same wave.
	cold, err := Solve(context.Background(), wave2, Options{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol2.Eval.Objective-cold.Eval.Objective) > 1e-9*(1+cold.Eval.Objective) {
		t.Errorf("cached wave2 %v vs cold %v", sol2.Eval.Objective, cold.Eval.Objective)
	}
	// And the population change moved the numbers.
	if sol1.Eval.Objective == sol2.Eval.Objective {
		t.Log("wave objectives coincide; populations differ so this is unexpected but not fatal")
	}
}

func TestSessionInvalidate(t *testing.T) {
	g, err := netgen.Generate(netgen.Config{Nodes: 60, Edges: 150, Components: 2, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(Options{})
	if _, err := sess.Solve(context.Background(), []UserInput{{Graph: g}}); err != nil {
		t.Fatal(err)
	}
	if !sess.Invalidate(g) {
		t.Error("Invalidate(cached) = false")
	}
	if sess.Invalidate(g) {
		t.Error("second Invalidate = true")
	}
	if sess.CachedGraphs() != 0 {
		t.Errorf("CachedGraphs after invalidate = %d", sess.CachedGraphs())
	}
	// Mutate and re-solve: fresh pipeline, no stale placement nodes.
	if err := g.AddEdge(0, 1, 99); err != nil {
		t.Logf("edge exists, coalesced: %v", err)
	}
	sol, err := sess.Solve(context.Background(), []UserInput{{Graph: g}})
	if err != nil {
		t.Fatal(err)
	}
	for id := range sol.Placements[0].Remote {
		if !g.HasNode(id) {
			t.Errorf("stale node %d in placement", id)
		}
	}
}

func TestSessionConcurrentSolves(t *testing.T) {
	g, err := netgen.Generate(netgen.Config{Nodes: 80, Edges: 240, Components: 2, Seed: 59})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(Options{})
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := sess.Solve(context.Background(), []UserInput{{Graph: g}, {Graph: g}})
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent solve: %v", err)
		}
	}
	if sess.CachedGraphs() != 1 {
		t.Errorf("CachedGraphs = %d, want 1", sess.CachedGraphs())
	}
}
