package core

import (
	"context"
	"fmt"
	"sort"

	"copmecs/internal/graph"
	"copmecs/internal/lpa"
	"copmecs/internal/spectral"
)

// csrJob is one cut job of the index-based pipeline: a sub-graph (one
// compressed component, or one raw component under DisableCompression) in
// local CSR form over ids 0..n−1. Local ids ascend with the external ids
// they stand for, so every ordering decision (ties, scans, summations)
// agrees with the map pipeline bit for bit.
type csrJob struct {
	n     int
	off   []int32
	tgt   []int32
	w     []float64
	nodeW []float64

	// cr/base identify the compressed component: local super s is global
	// super base+s of cr. nil when running uncompressed.
	cr   *lpa.CSRResult
	base int32
	// ids maps local id → original NodeID when uncompressed (nil otherwise;
	// compressed jobs use the contracted super numbering 0..n−1 directly,
	// matching the map pipeline's contracted sub-graphs).
	ids []graph.NodeID
	// vidx maps local id → index in the backing CSR view when uncompressed
	// (nil for compressed jobs, whose members live in cr.Members already).
	vidx []int32
}

// extID returns the NodeID that local id v carries in the engine-facing
// graph: the contracted super id for compressed jobs, the original NodeID
// for raw components. Both mappings are strictly increasing in v.
func (j *csrJob) extID(v int32) graph.NodeID {
	if j.cr != nil {
		return graph.NodeID(v)
	}
	return j.ids[v]
}

// localOf inverts extID.
func (j *csrJob) localOf(id graph.NodeID) int32 {
	if j.cr != nil {
		return int32(id)
	}
	return int32(sort.Search(len(j.ids), func(i int) bool { return j.ids[i] >= id }))
}

// nnz returns the job's stored adjacency entry count (2× its edge count).
func (j *csrJob) nnz() int { return int(j.off[j.n]) }

// buildCSRJobs turns every component of the view into a cut job, in
// component order. With compression enabled the components are first
// contracted by one CompressCSR pass (a fused view compresses all graphs'
// components in that single pass — compression is component-local, so the
// results are identical to per-graph runs).
func buildCSRJobs(c *graph.CSR, opts Options) ([]csrJob, error) {
	if opts.DisableCompression {
		return csrJobsUncompressed(c), nil
	}

	lopts := opts.LPA
	if lopts.Workers == 0 {
		// Inherit the solver's parallelism so Workers=1 (the Fig. 9
		// "without Spark" mode) is serial end to end.
		lopts.Workers = opts.Workers
	}
	cr, err := lpa.CompressCSR(c, lopts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return csrJobsFromCompressed(cr), nil
}

// csrJobsUncompressed builds one raw-component job per component of the view.
func csrJobsUncompressed(c *graph.CSR) []csrJob {
	// Job arrays are carved from per-array slabs sized by the view's totals:
	// one allocation per array kind instead of one per job, which matters
	// when a fused view holds hundreds of small components.
	comps := c.Components()
	jobs := make([]csrJob, 0, len(comps))
	n := c.NumNodes()
	totNNZ := 2 * c.NumEdges()
	localOf := make([]int32, n)
	for _, comp := range comps {
		for li, u := range comp {
			localOf[u] = int32(li)
		}
	}
	offSlab := make([]int32, 0, n+len(comps))
	idSlab := make([]graph.NodeID, 0, n)
	vidxSlab := make([]int32, 0, n)
	nodeWSlab := make([]float64, 0, n)
	tgtSlab := make([]int32, 0, totNNZ)
	wSlab := make([]float64, 0, totNNZ)
	nodeW := c.NodeWeights()
	for _, comp := range comps {
		k := len(comp)
		job := csrJob{
			n:     k,
			off:   offSlab[len(offSlab) : len(offSlab) : len(offSlab)+k+1],
			ids:   idSlab[len(idSlab) : len(idSlab) : len(idSlab)+k],
			vidx:  vidxSlab[len(vidxSlab) : len(vidxSlab) : len(vidxSlab)+k],
			nodeW: nodeWSlab[len(nodeWSlab) : len(nodeWSlab) : len(nodeWSlab)+k],
		}
		job.off = append(job.off, 0)
		nnz := 0
		for _, u := range comp {
			job.ids = append(job.ids, c.IDOf(u))
			job.vidx = append(job.vidx, u)
			job.nodeW = append(job.nodeW, nodeW[u])
			nnz += c.Degree(u)
			job.off = append(job.off, int32(nnz))
		}
		job.tgt = tgtSlab[len(tgtSlab) : len(tgtSlab) : len(tgtSlab)+nnz]
		job.w = wSlab[len(wSlab) : len(wSlab) : len(wSlab)+nnz]
		for _, u := range comp {
			tgt, w := c.Adj(u)
			for e, v := range tgt {
				job.tgt = append(job.tgt, localOf[v])
				job.w = append(job.w, w[e])
			}
		}
		offSlab = offSlab[:len(offSlab)+k+1]
		idSlab = idSlab[:len(idSlab)+k]
		vidxSlab = vidxSlab[:len(vidxSlab)+k]
		nodeWSlab = nodeWSlab[:len(nodeWSlab)+k]
		tgtSlab = tgtSlab[:len(tgtSlab)+nnz]
		wSlab = wSlab[:len(wSlab)+nnz]
		jobs = append(jobs, job)
	}
	return jobs
}

// csrJobsFromCompressed builds one contracted job per component of a
// compression result, in component order.
func csrJobsFromCompressed(cr *lpa.CSRResult) []csrJob {
	nComp := len(cr.CompOff) - 1
	jobs := make([]csrJob, 0, nComp)
	totalK := int(cr.CompOff[nComp])
	offSlab := make([]int32, totalK+nComp)
	tgtSlab := make([]int32, len(cr.Tgt))
	offAt, tgtAt := 0, 0
	for ci := 0; ci < nComp; ci++ {
		base, end := cr.CompOff[ci], cr.CompOff[ci+1]
		k := int(end - base)
		job := csrJob{n: k, cr: cr, base: base, nodeW: cr.NodeW[base:end]}
		// A component's supers are contiguous, so its adjacency is one
		// contiguous span of the global arrays; rebase it to local ids.
		// The weights need no rebasing at all and alias the global array.
		lo := cr.Off[base]
		job.off = offSlab[offAt : offAt+k+1 : offAt+k+1]
		offAt += k + 1
		for li := 0; li <= k; li++ {
			job.off[li] = cr.Off[int(base)+li] - lo
		}
		nnz := int(job.off[k])
		job.tgt = tgtSlab[tgtAt : tgtAt+nnz : tgtAt+nnz]
		tgtAt += nnz
		job.w = cr.W[lo : int(lo)+nnz]
		for e := 0; e < nnz; e++ {
			job.tgt[e] = cr.Tgt[int(lo)+e] - base
		}
		jobs = append(jobs, job)
	}
	return jobs
}

// runPipelineCSR is runPipeline over the compiled view: compression via the
// int32 kernels, cuts via the CSR-native spectral path (other engines get
// small materialised graphs per block). Output is identical to the map
// pipeline's — the equivalence property tests solve both ways and compare.
func runPipelineCSR(ctx context.Context, c *graph.CSR, opts Options) ([]protoPart, pipelineStats, error) {
	var ps pipelineStats
	jobs, err := buildCSRJobs(c, opts)
	if err != nil {
		return nil, ps, err
	}
	for i := range jobs {
		ps.nodesAfter += jobs[i].n
		ps.edgesAfter += jobs[i].nnz() / 2
	}

	maxParts := opts.MaxParts
	if maxParts < 2 {
		maxParts = 2
	}
	blocksOf := make([][][]int32, len(jobs))
	if err := parallelForEach(opts.Workers, len(jobs), func(i int) error {
		blocks, err := partitionCSR(ctx, &jobs[i], opts.Engine, maxParts)
		if err != nil {
			return fmt.Errorf("core: cut sub-graph: %w", err)
		}
		blocksOf[i] = blocks
		return nil
	}); err != nil {
		return nil, ps, err
	}

	total := 0
	for i := range jobs {
		total += len(blocksOf[i])
	}
	protos := make([]protoPart, 0, total)
	var sc protoScratch
	sc.prime(c.NumNodes(), len(jobs), false)
	for i := range jobs {
		protos = appendJobProtos(protos, &jobs[i], blocksOf[i], c.IDs(), 0, false, &sc)
	}
	return protos, ps, nil
}

// protoScratch is the reusable workspace for appendJobProtos: the per-node
// block assignment, the index staging buffer for the path that does not
// retain indices, and carve-forward chunk arenas for the small slabs that
// escape into protos (node lists, retained index lists, bisection edge
// pairs). Callers loop over jobs serially and own one instance.
//
// The chunks are carve-only: a window, once handed out, is never rewound or
// reused, so escaping windows stay valid even after the arena moves on to a
// fresh chunk. One pipeline run's worth of per-job slabs collapses into a
// handful of chunk allocations.
type protoScratch struct {
	blockOf []int32
	idx     []int32

	nodeChunk []graph.NodeID
	idxChunk  []int32
	peChunk   []PartEdge
}

// protoChunkSize is the arena chunk granularity. Large enough to amortise
// dozens of per-job slabs per allocation, small enough that a solution
// pinning its chunk holds only a few KiB of slack.
const protoChunkSize = 2048

// prime sizes the arenas for one pipeline run so they never overshoot:
// every job's node (and retained index) slabs together cover the run's
// original nodes exactly once, and each bisected job carves at most one
// two-entry edge pair. withIdx mirrors the appendJobProtos flag.
func (sc *protoScratch) prime(nodes, jobs int, withIdx bool) {
	if cap(sc.nodeChunk) < nodes {
		sc.nodeChunk = make([]graph.NodeID, 0, nodes)
	}
	if withIdx && cap(sc.idxChunk) < nodes {
		sc.idxChunk = make([]int32, 0, nodes)
	}
	if cap(sc.peChunk) < 2*jobs {
		sc.peChunk = make([]PartEdge, 0, 2*jobs)
	}
}

// nodeSlab carves a zero-length, capacity-n window for one job's node lists.
func (sc *protoScratch) nodeSlab(n int) []graph.NodeID {
	if cap(sc.nodeChunk)-len(sc.nodeChunk) < n {
		size := protoChunkSize
		if n > size {
			size = n
		}
		sc.nodeChunk = make([]graph.NodeID, 0, size)
	}
	off := len(sc.nodeChunk)
	sc.nodeChunk = sc.nodeChunk[:off+n]
	return sc.nodeChunk[off : off : off+n]
}

// idxSlab is nodeSlab for the retained graph-local index lists.
func (sc *protoScratch) idxSlab(n int) []int32 {
	if cap(sc.idxChunk)-len(sc.idxChunk) < n {
		size := protoChunkSize
		if n > size {
			size = n
		}
		sc.idxChunk = make([]int32, 0, size)
	}
	off := len(sc.idxChunk)
	sc.idxChunk = sc.idxChunk[:off+n]
	return sc.idxChunk[off : off : off+n]
}

// pePair carves the two-entry cross-edge slab a bisected job records.
func (sc *protoScratch) pePair() []PartEdge {
	if cap(sc.peChunk)-len(sc.peChunk) < 2 {
		sc.peChunk = make([]PartEdge, 0, protoChunkSize)
	}
	off := len(sc.peChunk)
	sc.peChunk = sc.peChunk[:off+2]
	return sc.peChunk[off : off+2 : off+2]
}

// appendJobProtos expands one cut job's blocks into proto parts and appends
// them to protos: per-block original-node expansion, pairwise cross weights,
// the lightest-part-local initial placement, and two-way sibling links.
// Proto adjacency indexes within the final protos slice of the same graph
// (base-relative), exactly as the map pipeline emits it.
//
// ids is the backing view's index→NodeID array and rebase the graph's node
// offset within it (0 for a single-graph view). With withIdx set each proto
// additionally records its members as graph-local CSR indices — the batch
// evaluator's input; the single-solve path skips it to stay
// allocation-neutral. sc is the caller's reusable workspace.
func appendJobProtos(protos []protoPart, j *csrJob, blocks [][]int32, ids []graph.NodeID, rebase int32, withIdx bool, sc *protoScratch) []protoPart {
	// All blocks together cover the job's original nodes exactly once, so
	// the per-block node lists carve one exactly-sized slab from the scratch
	// arena instead of allocating per block. The index staging buffer
	// escapes only on the withIdx path; the single-solve path stages
	// through scratch.
	totN := j.n
	if j.cr != nil {
		totN = int(j.cr.MemberOff[j.base+int32(j.n)] - j.cr.MemberOff[j.base])
	}
	nodesSlab := sc.nodeSlab(totN)
	var idxBuf []int32
	if withIdx {
		idxBuf = sc.idxSlab(totN)
	} else {
		if cap(sc.idx) < totN {
			sc.idx = make([]int32, 0, totN)
		}
		idxBuf = sc.idx[:0]
	}
	expand := func(side []int32) ([]graph.NodeID, []int32, float64) {
		var work float64
		start := len(idxBuf)
		for _, s := range side {
			work += j.nodeW[s]
			if j.cr != nil {
				g := j.base + s
				for _, u := range j.cr.Members[j.cr.MemberOff[g]:j.cr.MemberOff[g+1]] {
					idxBuf = append(idxBuf, u-rebase)
				}
			} else {
				idxBuf = append(idxBuf, j.vidx[s]-rebase)
			}
		}
		gidx := idxBuf[start:len(idxBuf):len(idxBuf)]
		// Graph-local index order is NodeID order (both ascend together), so
		// sorting the indices yields the same node ordering the map pipeline
		// produces by sorting NodeIDs.
		sortInt32s(gidx)
		nstart := len(nodesSlab)
		for _, li := range gidx {
			nodesSlab = append(nodesSlab, ids[rebase+li])
		}
		nodes := nodesSlab[nstart:len(nodesSlab):len(nodesSlab)]
		if !withIdx {
			gidx = nil
		}
		return nodes, gidx, work
	}

	base := len(protos)
	if cap(sc.blockOf) < j.n {
		sc.blockOf = make([]int32, j.n)
	}
	blockOf := sc.blockOf[:j.n]
	lightest, lightestWork := -1, 0.0
	for bi, block := range blocks {
		nodes, gidx, work := expand(block)
		protos = append(protos, protoPart{
			nodes: nodes, idx: gidx, work: work, sibling: -1, remote: true,
		})
		for _, id := range block {
			blockOf[id] = int32(bi)
		}
		if lightest < 0 || work < lightestWork {
			lightest, lightestWork = bi, work
		}
	}
	// Pairwise communication between blocks of this sub-graph. The scan
	// runs u ascending, v>u ascending — the same sequence as the map
	// pipeline's Edges() loop, so per-pair float sums match exactly.
	switch {
	case len(blocks) == 2:
		// Bisection (the default MaxParts): one pair, summed directly in
		// scan order — the map below would accumulate the same floats in
		// the same sequence under a single key.
		var w float64
		found := false
		for u := int32(0); u < int32(j.n); u++ {
			for e := j.off[u]; e < j.off[u+1]; e++ {
				v := j.tgt[e]
				if v < u || blockOf[u] == blockOf[v] {
					continue
				}
				w += j.w[e]
				found = true
			}
		}
		if found {
			pe := sc.pePair()
			pe[0] = PartEdge{Other: base + 1, Weight: w}
			pe[1] = PartEdge{Other: base, Weight: w}
			protos[base].adj = pe[:1:1]
			protos[base+1].adj = pe[1:2]
		} else {
			w = 0
		}
		protos[base+lightest].remote = false
		protos[base].sibling = base + 1
		protos[base+1].sibling = base
		protos[base].crossWeight = w
		protos[base+1].crossWeight = w
	case len(blocks) > 2:
		cross := make(map[[2]int]float64)
		for u := int32(0); u < int32(j.n); u++ {
			for e := j.off[u]; e < j.off[u+1]; e++ {
				v := j.tgt[e]
				if v < u {
					continue
				}
				a, b := int(blockOf[u]), int(blockOf[v])
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				cross[[2]int{a, b}] += j.w[e]
			}
		}
		for pair, w := range cross {
			pa, pb := base+pair[0], base+pair[1]
			protos[pa].adj = append(protos[pa].adj, PartEdge{Other: pb, Weight: w})
			protos[pb].adj = append(protos[pb].adj, PartEdge{Other: pa, Weight: w})
		}
		for bi := range blocks {
			sortPartEdges(protos[base+bi].adj)
		}
		// Algorithm 2's initial scheme generalised: the lightest part
		// stays on the device, every other part offloads.
		protos[base+lightest].remote = false
	}
	return protos
}

// splitScratch is the reusable workspace of one spectral block split: rank
// and epoch-membership marks over the job's local ids plus the induced-CSR
// assembly arrays. partitionCSR keeps one per job; the work-stealing batch
// path pools them per in-flight split.
type splitScratch struct {
	pos    []int32
	mark   []int32
	epoch  int32
	sorted []int32
	ioff   []int32
	itgt   []int32
	iw     []float64
	ident  []int32
	indiv  []bool
	// sideChunk is a carve-forward arena for the split side lists, which
	// escape into block slices. Windows are never rewound, so pooled reuse
	// of the scratch cannot clobber a live block. blockChunk is the same
	// arena idea for the per-job block header slices.
	sideChunk  []int32
	blockChunk [][]int32
}

// sideSlab carves an n-length window for one split's two side lists. The
// first chunk is sized exactly (a fresh per-job scratch bisecting once must
// not overshoot a tiny job); replacement chunks double toward the cap so a
// scratch shared across a whole fused round amortises quickly.
func (sc *splitScratch) sideSlab(n int) []int32 {
	if cap(sc.sideChunk)-len(sc.sideChunk) < n {
		size := 2 * cap(sc.sideChunk)
		if size > protoChunkSize {
			size = protoChunkSize
		}
		if size < n {
			size = n
		}
		sc.sideChunk = make([]int32, 0, size)
	}
	off := len(sc.sideChunk)
	sc.sideChunk = sc.sideChunk[:off+n]
	return sc.sideChunk[off : off+n : off+n]
}

// blockSlab carves a zero-length, capacity-k window for one job's block
// header list (the job appends at most k block slices).
func (sc *splitScratch) blockSlab(k int) [][]int32 {
	if cap(sc.blockChunk)-len(sc.blockChunk) < k {
		size := 2 * cap(sc.blockChunk)
		if size > protoChunkSize {
			size = protoChunkSize
		}
		if size < k {
			size = k
		}
		sc.blockChunk = make([][]int32, 0, size)
	}
	off := len(sc.blockChunk)
	sc.blockChunk = sc.blockChunk[:off+k]
	return sc.blockChunk[off : off : off+k]
}

func (sc *splitScratch) ensure(n int) {
	if len(sc.pos) < n {
		sc.pos = make([]int32, n)
		sc.mark = make([]int32, n)
		sc.epoch = 0
	}
}

// identity returns [0, 1, …, n) as a capacity-clamped view of a buffer that
// only ever holds the ascending sequence. Block slices are immutable once
// created (splits copy, never write in place), so every job a scratch serves
// can alias the same backing array for its starting all-nodes block — even
// the jobs that never split and carry the block into their results.
func (sc *splitScratch) identity(n int) []int32 {
	for len(sc.ident) < n {
		sc.ident = append(sc.ident, int32(len(sc.ident)))
	}
	return sc.ident[:n:n]
}

// splitSpectralBlock bisects one block of j with the CSR-native spectral
// path: members renumbered by rank into an induced CSR (the rank map is
// monotone, so adjacency stays ascending without re-sorting), then
// spectral.BisectCSR. A pure function of (j, block, spec) — scratch only
// carries reusable buffers — which is what lets the work-stealing scheduler
// run speculative splits on any worker with bit-identical results.
func splitSpectralBlock(j *csrJob, block []int32, spec SpectralEngine, sc *splitScratch) (sideA, sideB []int32, err error) {
	sc.ensure(j.n)
	if cap(sc.sorted) < len(block) {
		sc.sorted = make([]int32, len(block))
	}
	sorted := sc.sorted[:len(block)]
	copy(sorted, block)
	sortInt32s(sorted)
	sc.epoch++
	for r, id := range sorted {
		sc.pos[id] = int32(r)
		sc.mark[id] = sc.epoch
	}
	n := len(sorted)
	if cap(sc.ioff) < n+1 {
		sc.ioff = make([]int32, n+1)
	}
	sc.ioff = sc.ioff[:n+1]
	nnz := 0
	sc.ioff[0] = 0
	for r, id := range sorted {
		for e := j.off[id]; e < j.off[id+1]; e++ {
			if sc.mark[j.tgt[e]] == sc.epoch {
				nnz++
			}
		}
		sc.ioff[r+1] = int32(nnz)
	}
	if cap(sc.itgt) < nnz {
		sc.itgt = make([]int32, nnz)
		sc.iw = make([]float64, nnz)
	}
	sc.itgt, sc.iw = sc.itgt[:nnz], sc.iw[:nnz]
	p := 0
	for _, id := range sorted {
		for e := j.off[id]; e < j.off[id+1]; e++ {
			if v := j.tgt[e]; sc.mark[v] == sc.epoch {
				sc.itgt[p] = sc.pos[v]
				sc.iw[p] = j.w[e]
				p++
			}
		}
	}
	// BisectCSR fills the scratch-carved slab with member ranks; translating
	// rank→local id in place turns them into the block side lists without a
	// second slab. Sides are never appended to downstream.
	sideA, sideB, err = spectral.BisectCSRInto(sc.ioff, sc.itgt, sc.iw, sc.sideSlab(n), spec.spectralOptions())
	if err != nil {
		return nil, nil, fmt.Errorf("spectral engine: %w", err)
	}
	for i, r := range sideA {
		sideA[i] = sorted[r]
	}
	for i, r := range sideB {
		sideB[i] = sorted[r]
	}
	return sideA, sideB, nil
}

// partitionCSR is partitionSubgraph over a csrJob: recursive bisection of
// the heaviest divisible block, blocks held as local-id slices. The spectral
// engine runs CSR-native on an induced block view; every other engine gets a
// materialised sub-graph carrying the same node ids it would see from the
// map pipeline.
func partitionCSR(ctx context.Context, j *csrJob, engine Engine, k int) ([][]int32, error) {
	return partitionCSRScratch(ctx, j, engine, k, &splitScratch{})
}

// partitionCSRScratch is partitionCSR with caller-owned scratch, so the
// fused pipeline's serial loop reuses one workspace across all jobs.
func partitionCSRScratch(ctx context.Context, j *csrJob, engine Engine, k int, sc *splitScratch) ([][]int32, error) {
	blocks := append(sc.blockSlab(k), sc.identity(j.n))
	// indivisible never escapes the call, so it lives in scratch.
	if cap(sc.indiv) < k {
		sc.indiv = make([]bool, 0, k)
	}
	indivisible := append(sc.indiv[:0], false)
	spec, isSpectral := engine.(SpectralEngine)

	for len(blocks) < k {
		// Heaviest splittable block.
		best, bestWork := -1, -1.0
		for bi, block := range blocks {
			if indivisible[bi] || len(block) < 2 {
				continue
			}
			var work float64
			for _, id := range block {
				work += j.nodeW[id]
			}
			if work > bestWork {
				best, bestWork = bi, work
			}
		}
		if best < 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		block := blocks[best]

		var sideA, sideB []int32
		var err error
		if isSpectral {
			sideA, sideB, err = splitSpectralBlock(j, block, spec, sc)
			if err != nil {
				return nil, err
			}
		} else {
			sideA, sideB, err = splitMaterializedBlock(ctx, j, block, engine, sc)
			if err != nil {
				return nil, err
			}
		}
		if len(sideA) == 0 || len(sideB) == 0 {
			indivisible[best] = true
			continue
		}
		blocks[best] = sideA
		blocks = append(blocks, sideB)
		indivisible = append(indivisible, false)
		// Indices shifted only at the tail; indivisible marks stay valid.
	}
	return blocks, nil
}

// splitMaterializedBlock bisects one block via an engine that takes a
// *graph.Graph, materialising the block with the same node ids the map
// pipeline would hand it.
func splitMaterializedBlock(ctx context.Context, j *csrJob, block []int32, engine Engine, sc *splitScratch) (sideA, sideB []int32, err error) {
	sc.ensure(j.n)
	sorted := make([]int32, len(block))
	copy(sorted, block)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	sc.epoch++
	for _, id := range sorted {
		sc.mark[id] = sc.epoch
	}
	sub := graph.New(len(sorted))
	for _, id := range sorted {
		if err := sub.AddNode(j.extID(id), j.nodeW[id]); err != nil {
			return nil, nil, err
		}
	}
	for _, id := range sorted {
		for e := j.off[id]; e < j.off[id+1]; e++ {
			if v := j.tgt[e]; v > id && sc.mark[v] == sc.epoch {
				if err := sub.AddEdge(j.extID(id), j.extID(v), j.w[e]); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	extA, extB, err := engine.Bisect(ctx, sub)
	if err != nil {
		return nil, nil, err
	}
	sideA = make([]int32, len(extA))
	for i, id := range extA {
		sideA[i] = j.localOf(id)
	}
	sideB = make([]int32, len(extB))
	for i, id := range extB {
		sideB[i] = j.localOf(id)
	}
	return sideA, sideB, nil
}
