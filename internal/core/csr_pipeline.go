package core

import (
	"context"
	"fmt"
	"sort"

	"copmecs/internal/graph"
	"copmecs/internal/lpa"
	"copmecs/internal/spectral"
)

// csrJob is one cut job of the index-based pipeline: a sub-graph (one
// compressed component, or one raw component under DisableCompression) in
// local CSR form over ids 0..n−1. Local ids ascend with the external ids
// they stand for, so every ordering decision (ties, scans, summations)
// agrees with the map pipeline bit for bit.
type csrJob struct {
	n     int
	off   []int32
	tgt   []int32
	w     []float64
	nodeW []float64

	// cr/base identify the compressed component: local super s is global
	// super base+s of cr. nil when running uncompressed.
	cr   *lpa.CSRResult
	base int32
	// ids maps local id → original NodeID when uncompressed (nil otherwise;
	// compressed jobs use the contracted super numbering 0..n−1 directly,
	// matching the map pipeline's contracted sub-graphs).
	ids []graph.NodeID
}

// extID returns the NodeID that local id v carries in the engine-facing
// graph: the contracted super id for compressed jobs, the original NodeID
// for raw components. Both mappings are strictly increasing in v.
func (j *csrJob) extID(v int32) graph.NodeID {
	if j.cr != nil {
		return graph.NodeID(v)
	}
	return j.ids[v]
}

// localOf inverts extID.
func (j *csrJob) localOf(id graph.NodeID) int32 {
	if j.cr != nil {
		return int32(id)
	}
	return int32(sort.Search(len(j.ids), func(i int) bool { return j.ids[i] >= id }))
}

// runPipelineCSR is runPipeline over the compiled view: compression via the
// int32 kernels, cuts via the CSR-native spectral path (other engines get
// small materialised graphs per block). Output is identical to the map
// pipeline's — the equivalence property tests solve both ways and compare.
func runPipelineCSR(ctx context.Context, c *graph.CSR, opts Options) ([]protoPart, pipelineStats, error) {
	var (
		jobs []csrJob
		ps   pipelineStats
	)
	if opts.DisableCompression {
		n := c.NumNodes()
		localOf := make([]int32, n)
		for _, comp := range c.Components() {
			for li, u := range comp {
				localOf[u] = int32(li)
			}
		}
		nodeW := c.NodeWeights()
		for _, comp := range c.Components() {
			k := len(comp)
			job := csrJob{
				n:     k,
				off:   make([]int32, k+1),
				ids:   make([]graph.NodeID, k),
				nodeW: make([]float64, k),
			}
			nnz := 0
			for li, u := range comp {
				job.ids[li] = c.IDOf(u)
				job.nodeW[li] = nodeW[u]
				nnz += c.Degree(u)
				job.off[li+1] = int32(nnz)
			}
			job.tgt = make([]int32, nnz)
			job.w = make([]float64, nnz)
			pos := 0
			for _, u := range comp {
				tgt, w := c.Adj(u)
				for e, v := range tgt {
					job.tgt[pos] = localOf[v]
					job.w[pos] = w[e]
					pos++
				}
			}
			ps.nodesAfter += k
			ps.edgesAfter += nnz / 2
			jobs = append(jobs, job)
		}
	} else {
		lopts := opts.LPA
		if lopts.Workers == 0 {
			// Inherit the solver's parallelism so Workers=1 (the Fig. 9
			// "without Spark" mode) is serial end to end.
			lopts.Workers = opts.Workers
		}
		cr, err := lpa.CompressCSR(c, lopts)
		if err != nil {
			return nil, ps, fmt.Errorf("core: %w", err)
		}
		ps.nodesAfter = cr.NodesAfter
		ps.edgesAfter = cr.EdgesAfter
		for ci := 0; ci < len(cr.CompOff)-1; ci++ {
			base, end := cr.CompOff[ci], cr.CompOff[ci+1]
			k := int(end - base)
			job := csrJob{n: k, cr: cr, base: base, nodeW: cr.NodeW[base:end], off: make([]int32, k+1)}
			// A component's supers are contiguous, so its adjacency is one
			// contiguous span of the global arrays; rebase it to local ids.
			lo := cr.Off[base]
			for li := 0; li <= k; li++ {
				job.off[li] = cr.Off[int(base)+li] - lo
			}
			nnz := int(job.off[k])
			job.tgt = make([]int32, nnz)
			job.w = make([]float64, nnz)
			copy(job.w, cr.W[lo:int(lo)+nnz])
			for e := 0; e < nnz; e++ {
				job.tgt[e] = cr.Tgt[int(lo)+e] - base
			}
			jobs = append(jobs, job)
		}
	}

	maxParts := opts.MaxParts
	if maxParts < 2 {
		maxParts = 2
	}
	blocksOf := make([][][]int32, len(jobs))
	if err := parallelForEach(opts.Workers, len(jobs), func(i int) error {
		blocks, err := partitionCSR(ctx, &jobs[i], opts.Engine, maxParts)
		if err != nil {
			return fmt.Errorf("core: cut sub-graph: %w", err)
		}
		blocksOf[i] = blocks
		return nil
	}); err != nil {
		return nil, ps, err
	}

	var protos []protoPart
	expand := func(j *csrJob, side []int32) ([]graph.NodeID, float64) {
		var nodes []graph.NodeID
		var work float64
		for _, s := range side {
			work += j.nodeW[s]
			if j.cr != nil {
				g := j.base + s
				for _, u := range j.cr.Members[j.cr.MemberOff[g]:j.cr.MemberOff[g+1]] {
					nodes = append(nodes, c.IDOf(u))
				}
			} else {
				nodes = append(nodes, j.ids[s])
			}
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		return nodes, work
	}
	for i := range jobs {
		j := &jobs[i]
		blocks := blocksOf[i]
		base := len(protos)
		blockOf := make([]int32, j.n)
		lightest, lightestWork := -1, 0.0
		for bi, block := range blocks {
			nodes, work := expand(j, block)
			protos = append(protos, protoPart{
				nodes: nodes, work: work, sibling: -1, remote: true,
			})
			for _, id := range block {
				blockOf[id] = int32(bi)
			}
			if lightest < 0 || work < lightestWork {
				lightest, lightestWork = bi, work
			}
		}
		// Pairwise communication between blocks of this sub-graph. The scan
		// runs u ascending, v>u ascending — the same sequence as the map
		// pipeline's Edges() loop, so per-pair float sums match exactly.
		if len(blocks) > 1 {
			cross := make(map[[2]int]float64)
			for u := int32(0); u < int32(j.n); u++ {
				for e := j.off[u]; e < j.off[u+1]; e++ {
					v := j.tgt[e]
					if v < u {
						continue
					}
					a, b := int(blockOf[u]), int(blockOf[v])
					if a == b {
						continue
					}
					if a > b {
						a, b = b, a
					}
					cross[[2]int{a, b}] += j.w[e]
				}
			}
			for pair, w := range cross {
				pa, pb := base+pair[0], base+pair[1]
				protos[pa].adj = append(protos[pa].adj, PartEdge{Other: pb, Weight: w})
				protos[pb].adj = append(protos[pb].adj, PartEdge{Other: pa, Weight: w})
			}
			for bi := range blocks {
				sortPartEdges(protos[base+bi].adj)
			}
			// Algorithm 2's initial scheme generalised: the lightest part
			// stays on the device, every other part offloads.
			protos[base+lightest].remote = false
			if len(blocks) == 2 {
				protos[base].sibling = base + 1
				protos[base+1].sibling = base
				w := 0.0
				if len(protos[base].adj) > 0 {
					w = protos[base].adj[0].Weight
				}
				protos[base].crossWeight = w
				protos[base+1].crossWeight = w
			}
		}
	}
	return protos, ps, nil
}

// partitionCSR is partitionSubgraph over a csrJob: recursive bisection of
// the heaviest divisible block, blocks held as local-id slices. The spectral
// engine runs CSR-native on an induced block view; every other engine gets a
// materialised sub-graph carrying the same node ids it would see from the
// map pipeline.
func partitionCSR(ctx context.Context, j *csrJob, engine Engine, k int) ([][]int32, error) {
	all := make([]int32, j.n)
	for i := range all {
		all[i] = int32(i)
	}
	blocks := [][]int32{all}
	indivisible := make(map[int]bool)
	spec, isSpectral := engine.(SpectralEngine)

	// Per-job scratch for induced block views: rank of each member within
	// the sorted block, and an epoch membership mark.
	var (
		pos   = make([]int32, j.n)
		mark  = make([]int32, j.n)
		epoch int32
		ioff  []int32
		itgt  []int32
		iw    []float64
	)

	for len(blocks) < k {
		// Heaviest splittable block.
		best, bestWork := -1, -1.0
		for bi, block := range blocks {
			if indivisible[bi] || len(block) < 2 {
				continue
			}
			var work float64
			for _, id := range block {
				work += j.nodeW[id]
			}
			if work > bestWork {
				best, bestWork = bi, work
			}
		}
		if best < 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		block := blocks[best]
		sorted := make([]int32, len(block))
		copy(sorted, block)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		epoch++
		for r, id := range sorted {
			pos[id] = int32(r)
			mark[id] = epoch
		}

		var sideA, sideB []int32
		if isSpectral {
			// Induced block CSR: members renumbered by rank. The rank map is
			// monotone, so adjacency stays ascending without re-sorting.
			n := len(sorted)
			if cap(ioff) < n+1 {
				ioff = make([]int32, n+1)
			}
			ioff = ioff[:n+1]
			nnz := 0
			ioff[0] = 0
			for r, id := range sorted {
				for e := j.off[id]; e < j.off[id+1]; e++ {
					if mark[j.tgt[e]] == epoch {
						nnz++
					}
				}
				ioff[r+1] = int32(nnz)
			}
			if cap(itgt) < nnz {
				itgt = make([]int32, nnz)
				iw = make([]float64, nnz)
			}
			itgt, iw = itgt[:nnz], iw[:nnz]
			p := 0
			for _, id := range sorted {
				for e := j.off[id]; e < j.off[id+1]; e++ {
					if v := j.tgt[e]; mark[v] == epoch {
						itgt[p] = pos[v]
						iw[p] = j.w[e]
						p++
					}
				}
			}
			subA, subB, err := spectral.BisectCSR(ioff, itgt, iw, spec.spectralOptions())
			if err != nil {
				return nil, fmt.Errorf("spectral engine: %w", err)
			}
			sideA = make([]int32, len(subA))
			for i, r := range subA {
				sideA[i] = sorted[r]
			}
			sideB = make([]int32, len(subB))
			for i, r := range subB {
				sideB[i] = sorted[r]
			}
		} else {
			// Materialise the block for engines that take a *graph.Graph.
			sub := graph.New(len(sorted))
			for _, id := range sorted {
				if err := sub.AddNode(j.extID(id), j.nodeW[id]); err != nil {
					return nil, err
				}
			}
			for _, id := range sorted {
				for e := j.off[id]; e < j.off[id+1]; e++ {
					if v := j.tgt[e]; v > id && mark[v] == epoch {
						if err := sub.AddEdge(j.extID(id), j.extID(v), j.w[e]); err != nil {
							return nil, err
						}
					}
				}
			}
			extA, extB, err := engine.Bisect(ctx, sub)
			if err != nil {
				return nil, err
			}
			sideA = make([]int32, len(extA))
			for i, id := range extA {
				sideA[i] = j.localOf(id)
			}
			sideB = make([]int32, len(extB))
			for i, id := range extB {
				sideB[i] = j.localOf(id)
			}
		}
		if len(sideA) == 0 || len(sideB) == 0 {
			indivisible[best] = true
			continue
		}
		blocks[best] = sideA
		blocks = append(blocks, sideB)
		// Indices shifted only at the tail; indivisible marks stay valid.
	}
	return blocks, nil
}
