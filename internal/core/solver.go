package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"copmecs/internal/graph"
	"copmecs/internal/lpa"
	"copmecs/internal/mec"
	"copmecs/internal/parallel"
)

// Solver errors.
var (
	// ErrNilGraph is returned when a user has no graph.
	ErrNilGraph = errors.New("core: user graph is nil")
)

// GreedyMode selects the scheme-generation strategy of Algorithm 2.
type GreedyMode int

// Greedy modes.
const (
	// GreedyAuto picks Strict for small instances and Batch at scale.
	GreedyAuto GreedyMode = iota
	// GreedyStrict is the paper's Algorithm 2 verbatim: each iteration
	// scans every remote part and moves the single best one. O(moves ×
	// parts); exact but quadratic.
	GreedyStrict
	// GreedyBatch applies improving moves in rounds, re-validating each
	// candidate's delta against the live state immediately before applying
	// it. The objective decreases monotonically, convergence is to the same
	// kind of local optimum, and large multi-user fleets stay tractable.
	GreedyBatch
)

// greedyAutoCutoff is the part count above which GreedyAuto switches from
// the quadratic strict scan to batch rounds.
const greedyAutoCutoff = 4096

// Options configures Solve. The zero value uses the spectral engine with
// compression, default LPA and MEC parameters, and auto greedy.
type Options struct {
	// Engine is the minimum-cut engine (nil = SpectralEngine{}).
	Engine Engine
	// LPA tunes the compression stage.
	LPA lpa.Options
	// Params are the MEC system constants (zero value = mec.Defaults()).
	Params mec.Params
	// DisableCompression skips Algorithm 1 and cuts the raw component
	// sub-graphs (ablation; the paper's motivation for compressing is both
	// speed and avoiding cuts through highly coupled pairs).
	DisableCompression bool
	// Greedy selects the scheme-generation strategy.
	Greedy GreedyMode
	// DisableGreedy stops after the initial cut split (ablation: measures
	// what Algorithm 2's greedy pass adds over the raw minimum cuts).
	DisableGreedy bool
	// MaxParts caps the number of parts each compressed sub-graph is split
	// into. The paper bisects (2); values above 2 enable recursive
	// bisection — the "reduce the computational complexity / finer
	// placement" direction the paper's conclusion points to. 0 means 2.
	MaxParts int
	// Workers bounds the number of concurrent per-sub-graph cut jobs
	// (0 = GOMAXPROCS; 1 = serial, the Fig. 9 "without Spark" mode).
	Workers int
	// UseMapPipeline runs the original map-based pipeline (mutable graphs,
	// InducedSubgraph, map-keyed LPA) instead of the CSR hot path. The two
	// produce identical solutions — property tests solve both ways and
	// compare — so this exists as the reference/ablation switch, not a
	// feature flag.
	UseMapPipeline bool
}

// UserInput is one user's workload.
type UserInput struct {
	// Graph is the user's offloadable function data-flow graph.
	Graph *graph.Graph
	// FixedLocalWork is computation pinned to the device regardless of the
	// scheme (the unoffloadable functions callgraph.Extract strips).
	FixedLocalWork float64
	// DeviceCompute optionally overrides Params.DeviceCompute.
	DeviceCompute float64
	// Bandwidth optionally overrides Params.Bandwidth (heterogeneous radio
	// links; the paper assumes a uniform b).
	Bandwidth float64
	// PowerTransmit optionally overrides Params.PowerTransmit.
	PowerTransmit float64
}

// Part is one movable unit of Algorithm 2: a cut side of one compressed
// sub-graph of one user.
type Part struct {
	// User indexes the owning user.
	User int
	// Nodes are the original graph nodes in the part, sorted.
	Nodes []graph.NodeID
	// Work is the part's total computation amount.
	Work float64
	// CrossWeight is the communication between this part and its sibling
	// (populated for two-way splits; multiway splits use Adj).
	CrossWeight float64
	// Sibling is the index (into Solution.Parts) of the other side of a
	// two-way split, or -1 for uncut or multiway sub-graphs.
	Sibling int
	// Adj lists communication to every other part of the same sub-graph.
	Adj []PartEdge
	// Remote reports the current placement (initially the cut split of
	// Algorithm 2: the heavier side of each sub-graph offloads, the lighter
	// side stays on the device; after Solve it is the final placement).
	Remote bool
	// InitialRemote records the pre-greedy placement for diagnostics.
	InitialRemote bool

	// idx carries Nodes as graph-local CSR indices (aligned with Nodes) when
	// the part came out of the batch pipeline; the batch evaluator walks the
	// fused CSR through it instead of re-deriving indices from NodeIDs. nil
	// on the single-solve path.
	idx []int32
}

// PartEdge is the communication between two parts of one sub-graph.
type PartEdge struct {
	// Other indexes the adjacent part (into the same parts slice).
	Other int
	// Weight is the total edge weight between the two parts.
	Weight float64
}

// Stats summarises a solve.
type Stats struct {
	EngineName       string
	Users            int
	Parts            int
	GreedyMoves      int
	GreedyIterations int
	NodesBefore      int
	NodesAfter       int
	EdgesBefore      int
	EdgesAfter       int
	// PipelineTime covers compression plus the cut stage (the part Fig. 9
	// parallelises); GreedyTime covers Algorithm 2's scheme generation.
	PipelineTime time.Duration
	GreedyTime   time.Duration
}

// Solution is the final offloading scheme.
type Solution struct {
	// Placements has one entry per user, aligned with the input.
	Placements []mec.Placement
	// Eval is the full model evaluation of the final scheme.
	Eval *mec.Evaluation
	// Parts exposes Algorithm 2's movable units and their placements.
	Parts []Part
	// InitialObjective is E + T of the pre-greedy cut split; comparing it
	// with Eval.Objective shows what the greedy pass earned.
	InitialObjective float64
	// Stats carries pipeline counters.
	Stats Stats
}

// Solve runs the full pipeline — compression, per-sub-graph minimum cut,
// greedy scheme generation — over all users simultaneously (the multi-user
// coupling is the shared edge-server capacity). ctx cancels the cut stage
// between bisections and propagates to cluster engines' in-flight calls.
func Solve(ctx context.Context, users []UserInput, opts Options) (*Solution, error) {
	return solve(ctx, users, opts, nil)
}

// solve is the shared implementation behind Solve and Session.Solve; cache
// may be nil.
func solve(ctx context.Context, users []UserInput, opts Options, cache *Session) (*Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Engine == nil {
		opts.Engine = SpectralEngine{}
	}
	if opts.Params == (mec.Params{}) {
		opts.Params = mec.Defaults()
	}
	if err := opts.Params.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	for i, u := range users {
		if u.Graph == nil {
			return nil, fmt.Errorf("%w: user %d", ErrNilGraph, i)
		}
	}

	pipelineStart := time.Now()
	parts, stats, err := buildParts(ctx, users, opts, cache)
	if err != nil {
		return nil, err
	}
	stats.PipelineTime = time.Since(pipelineStart)
	return finishSolve(users, parts, stats, opts)
}

// finishSolve runs Algorithm 2's greedy scheme generation and the final model
// evaluation over already-built parts; shared by solve and the incremental
// path (which assembles parts itself so it can warm-start the placement).
func finishSolve(users []UserInput, parts []Part, stats *Stats, opts Options) (*Solution, error) {
	stats.EngineName = opts.Engine.Name()
	stats.Users = len(users)

	greedyStart := time.Now()
	initialObj, moves, iters := runGreedy(users, parts, opts)
	stats.GreedyTime = time.Since(greedyStart)
	stats.GreedyMoves = moves
	stats.GreedyIterations = iters

	sol := &Solution{Parts: parts, Stats: *stats, InitialObjective: initialObj}
	sol.Placements = make([]mec.Placement, len(users))
	remoteNodes := make([]int, len(users))
	for _, p := range parts {
		if p.Remote {
			remoteNodes[p.User] += len(p.Nodes)
		}
	}
	for i, u := range users {
		sol.Placements[i] = mec.Placement{
			Graph:         u.Graph,
			Remote:        make(map[graph.NodeID]bool, remoteNodes[i]),
			DeviceCompute: u.DeviceCompute,
			Bandwidth:     u.Bandwidth,
			PowerTransmit: u.PowerTransmit,
		}
	}
	for _, p := range parts {
		if p.Remote {
			for _, id := range p.Nodes {
				sol.Placements[p.User].Remote[id] = true
			}
		}
	}
	eval, err := evaluateWithFixedWork(opts.Params, users, sol.Placements)
	if err != nil {
		return nil, err
	}
	sol.Eval = eval
	return sol, nil
}

// evaluateWithFixedWork evaluates placements, folding each user's pinned
// local work into the model.
func evaluateWithFixedWork(p mec.Params, users []UserInput, placements []mec.Placement) (*mec.Evaluation, error) {
	states := make([]mec.UserState, len(placements))
	for i, pl := range placements {
		states[i] = pl.State()
		states[i].LocalWork += users[i].FixedLocalWork
	}
	return mec.Evaluate(p, states)
}

// protoPart is a user-independent part template produced by the pipeline
// for one distinct graph. Sibling indexes into the same template slice.
type protoPart struct {
	nodes       []graph.NodeID
	idx         []int32 // graph-local CSR indices of nodes (batch pipeline only)
	work        float64
	crossWeight float64
	sibling     int
	adj         []PartEdge // Other indexes within the same proto slice
	remote      bool
}

// pipelineStats carries the per-graph compression counters.
type pipelineStats struct {
	nodesAfter, edgesAfter int
}

// buildParts runs compression and the cut engine for every user, returning
// the movable parts in Algorithm 2's initial placement (each sub-graph's
// lighter cut side on the device, heavier side offloaded).
//
// Users frequently share a graph (a fleet running the same application —
// the regime of the paper's multi-user experiments). The pipeline output
// depends only on the graph, so it is computed once per distinct *Graph
// pointer and instantiated per user. Graphs must not be mutated during
// Solve.
func buildParts(ctx context.Context, users []UserInput, opts Options, cache *Session) ([]Part, *Stats, error) {
	stats := &Stats{}

	// Identify distinct graphs, preserving first-appearance order.
	graphIdx := make(map[*graph.Graph]int)
	var distinct []*graph.Graph
	userGraph := make([]int, len(users))
	for ui, u := range users {
		stats.NodesBefore += u.Graph.NumNodes()
		stats.EdgesBefore += u.Graph.NumEdges()
		gi, ok := graphIdx[u.Graph]
		if !ok {
			gi = len(distinct)
			graphIdx[u.Graph] = gi
			distinct = append(distinct, u.Graph)
		}
		userGraph[ui] = gi
	}

	// Run the pipeline once per distinct graph, in parallel, consulting the
	// session cache when one is attached.
	protos := make([][]protoPart, len(distinct))
	pstats := make([]pipelineStats, len(distinct))
	if err := parallelForEach(opts.Workers, len(distinct), func(i int) error {
		if cache != nil {
			if pp, ps, ok := cache.lookup(distinct[i]); ok {
				protos[i] = pp
				pstats[i] = ps
				return nil
			}
		}
		pp, ps, err := runPipeline(ctx, distinct[i], opts)
		if err != nil {
			return err
		}
		protos[i] = pp
		pstats[i] = ps
		if cache != nil {
			cache.store(distinct[i], pp, ps)
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}

	// Instantiate per user.
	var parts []Part
	for ui := range users {
		gi := userGraph[ui]
		stats.NodesAfter += pstats[gi].nodesAfter
		stats.EdgesAfter += pstats[gi].edgesAfter
		parts = instantiateProtos(parts, ui, protos[gi])
	}
	stats.Parts = len(parts)
	return parts, stats, nil
}

// instantiateProtos appends user ui's copy of the graph's part templates,
// rebasing sibling/adjacency indices to the user's offset in parts. Node
// slices are shared with the templates (read-only downstream).
func instantiateProtos(parts []Part, ui int, protos []protoPart) []Part {
	base := len(parts)
	// One adjacency slab for the whole template: each part's rebased edge
	// list is a carve, not its own allocation. Lists are never appended to
	// after instantiation, so sharing a backing array is safe.
	total := 0
	for _, pp := range protos {
		total += len(pp.adj)
	}
	var slab []PartEdge
	if total > 0 {
		slab = make([]PartEdge, 0, total)
	}
	for _, pp := range protos {
		p := Part{
			User: ui, Nodes: pp.nodes, Work: pp.work,
			CrossWeight: pp.crossWeight, Sibling: -1,
			Remote: pp.remote, InitialRemote: pp.remote,
			idx: pp.idx,
		}
		if pp.sibling >= 0 {
			p.Sibling = base + pp.sibling
		}
		if len(pp.adj) > 0 {
			start := len(slab)
			for _, e := range pp.adj {
				slab = append(slab, PartEdge{Other: base + e.Other, Weight: e.Weight})
			}
			p.Adj = slab[start:len(slab):len(slab)]
		}
		parts = append(parts, p)
	}
	return parts
}

// runPipeline compresses one graph (unless disabled) and cuts every
// sub-graph, returning part templates. The default path compiles the graph
// into its frozen CSR view and runs the index-based kernels; the map path
// below is kept as the bit-identical reference (Options.UseMapPipeline).
func runPipeline(ctx context.Context, g *graph.Graph, opts Options) ([]protoPart, pipelineStats, error) {
	if !opts.UseMapPipeline {
		return runPipelineCSR(ctx, g.Compile(), opts)
	}
	return runPipelineMap(ctx, g, opts)
}

// runPipelineMap is the original map-based pipeline, retained as the
// reference implementation the CSR path is tested against.
func runPipelineMap(ctx context.Context, g *graph.Graph, opts Options) ([]protoPart, pipelineStats, error) {
	type job struct {
		sub       *graph.Graph
		membersOf map[graph.NodeID][]graph.NodeID // nil when uncompressed
	}
	var (
		jobs []job
		ps   pipelineStats
	)
	if opts.DisableCompression {
		for _, comp := range g.Components() {
			sub, err := g.InducedSubgraph(comp)
			if err != nil {
				return nil, ps, fmt.Errorf("core: %w", err)
			}
			ps.nodesAfter += sub.NumNodes()
			ps.edgesAfter += sub.NumEdges()
			jobs = append(jobs, job{sub: sub})
		}
	} else {
		if opts.LPA.Workers == 0 {
			// Inherit the solver's parallelism so Workers=1 (the Fig. 9
			// "without Spark" mode) is serial end to end.
			opts.LPA.Workers = opts.Workers
		}
		res, err := lpa.CompressMap(g, opts.LPA)
		if err != nil {
			return nil, ps, fmt.Errorf("core: %w", err)
		}
		ps.nodesAfter = res.NodesAfter
		ps.edgesAfter = res.EdgesAfter
		for si := range res.Subgraphs {
			sub := &res.Subgraphs[si]
			jobs = append(jobs, job{sub: sub.Graph, membersOf: sub.MembersOf})
		}
	}

	maxParts := opts.MaxParts
	if maxParts < 2 {
		maxParts = 2
	}
	blocksOf := make([][][]graph.NodeID, len(jobs))
	if err := parallelForEach(opts.Workers, len(jobs), func(i int) error {
		blocks, err := partitionSubgraph(ctx, jobs[i].sub, opts.Engine, maxParts)
		if err != nil {
			return fmt.Errorf("core: cut sub-graph: %w", err)
		}
		blocksOf[i] = blocks
		return nil
	}); err != nil {
		return nil, ps, err
	}

	var protos []protoPart
	expand := func(j job, side []graph.NodeID) ([]graph.NodeID, float64) {
		var nodes []graph.NodeID
		var work float64
		for _, super := range side {
			w, err := j.sub.NodeWeight(super)
			if err == nil {
				work += w
			}
			if j.membersOf != nil {
				nodes = append(nodes, j.membersOf[super]...)
			} else {
				nodes = append(nodes, super)
			}
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		return nodes, work
	}
	for i, j := range jobs {
		blocks := blocksOf[i]
		base := len(protos)
		blockOf := make(map[graph.NodeID]int, j.sub.NumNodes())
		lightest, lightestWork := -1, 0.0
		for bi, block := range blocks {
			nodes, work := expand(j, block)
			protos = append(protos, protoPart{
				nodes: nodes, work: work, sibling: -1, remote: true,
			})
			for _, id := range block {
				blockOf[id] = bi
			}
			if lightest < 0 || work < lightestWork {
				lightest, lightestWork = bi, work
			}
		}
		// Pairwise communication between blocks of this sub-graph.
		if len(blocks) > 1 {
			cross := make(map[[2]int]float64)
			for _, e := range j.sub.Edges() {
				a, b := blockOf[e.U], blockOf[e.V]
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				cross[[2]int{a, b}] += e.Weight
			}
			for pair, w := range cross {
				pa, pb := base+pair[0], base+pair[1]
				// adj targets are proto-slice indices; instantiation adds
				// the per-user offset on top.
				protos[pa].adj = append(protos[pa].adj, PartEdge{Other: pb, Weight: w})
				protos[pb].adj = append(protos[pb].adj, PartEdge{Other: pa, Weight: w})
			}
			for bi := range blocks {
				sortPartEdges(protos[base+bi].adj)
			}
			// Algorithm 2's initial scheme generalised: the lightest part
			// stays on the device, every other part offloads (for two-way
			// splits this is exactly "lighter side local, heavier remote").
			protos[base+lightest].remote = false
			if len(blocks) == 2 {
				protos[base].sibling = base + 1
				protos[base+1].sibling = base
				w := 0.0
				if len(protos[base].adj) > 0 {
					w = protos[base].adj[0].Weight
				}
				protos[base].crossWeight = w
				protos[base+1].crossWeight = w
			}
		}
	}
	return protos, ps, nil
}

// sortPartEdges orders adjacency deterministically by target index.
// Insertion sort: the lists are at most MaxParts−1 long and the targets are
// distinct, so this is allocation-free and yields exactly what any sort
// would.
func sortPartEdges(edges []PartEdge) {
	for i := 1; i < len(edges); i++ {
		e := edges[i]
		j := i - 1
		for j >= 0 && edges[j].Other > e.Other {
			edges[j+1] = edges[j]
			j--
		}
		edges[j+1] = e
	}
}

// partitionSubgraph splits g into at most k parts by recursive bisection
// with the given engine: the heaviest divisible part is bisected until k
// parts exist or nothing can be split further. k ≥ 2; a single-node graph
// yields one part.
func partitionSubgraph(ctx context.Context, g *graph.Graph, engine Engine, k int) ([][]graph.NodeID, error) {
	blocks := [][]graph.NodeID{g.Nodes()}
	indivisible := make(map[int]bool)
	for len(blocks) < k {
		// Heaviest splittable block.
		best, bestWork := -1, -1.0
		for bi, block := range blocks {
			if indivisible[bi] || len(block) < 2 {
				continue
			}
			var work float64
			for _, id := range block {
				w, err := g.NodeWeight(id)
				if err != nil {
					return nil, err
				}
				work += w
			}
			if work > bestWork {
				best, bestWork = bi, work
			}
		}
		if best < 0 {
			break
		}
		sub, err := g.InducedSubgraph(blocks[best])
		if err != nil {
			return nil, err
		}
		sideA, sideB, err := engine.Bisect(ctx, sub)
		if err != nil {
			return nil, err
		}
		if len(sideA) == 0 || len(sideB) == 0 {
			indivisible[best] = true
			continue
		}
		blocks[best] = sideA
		blocks = append(blocks, sideB)
		// Indices shifted only at the tail; indivisible marks stay valid.
	}
	return blocks, nil
}

// parallelForEach runs fn over [0, n) with bounded parallelism; workers == 1
// stays on the calling goroutine (deterministic serial mode).
func parallelForEach(workers, n int, fn func(int) error) error {
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	return parallel.ForEach(workers, n, fn)
}
