package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"copmecs/internal/graph"
	"copmecs/internal/mec"
)

// BatchItem is one independent solve request of a batch: its own user
// population and (optionally) its own MEC system constants. The zero Params
// value inherits the solver options' params (and ultimately mec.Defaults),
// exactly as SolveWithParams resolves them.
type BatchItem struct {
	Users  []UserInput
	Params mec.Params
}

// BatchResult is one item's outcome: a solution or that item's error. Items
// fail independently — one invalid request does not poison the round.
type BatchResult struct {
	Solution *Solution
	Err      error
}

// BatchSolve solves many independent items in one fused pass. The results
// are bit-for-bit identical to calling Solve once per item (a property test
// enforces this, including against the map-pipeline oracle); the win is
// constant-factor: every distinct graph across the whole batch is compiled
// into one fused CSR mega-instance, compressed by a single LPA pass, cut
// with the arena-backed flat eigensolver, and evaluated straight off the
// fused arrays — instead of paying per-graph pipeline setup N times.
//
// With opts.Workers > 1 and the spectral engine, the recursive bisections of
// all cut jobs additionally share one work-stealing pool, so a single deep
// recursion tree cannot serialise the round.
func BatchSolve(ctx context.Context, items []BatchItem, opts Options) []BatchResult {
	return batchSolve(ctx, items, opts, nil)
}

// BatchSolve is package-level BatchSolve through the session cache: graphs
// already pipelined by earlier solves skip the fused pass entirely, and
// graphs fused this round are cached for later solves.
func (s *Session) BatchSolve(ctx context.Context, items []BatchItem) []BatchResult {
	return batchSolve(ctx, items, s.opts, s)
}

func batchSolve(ctx context.Context, items []BatchItem, opts Options, cache *Session) []BatchResult {
	res := make([]BatchResult, len(items))
	if err := ctx.Err(); err != nil {
		for i := range res {
			res[i].Err = err
		}
		return res
	}
	if opts.Engine == nil {
		opts.Engine = SpectralEngine{}
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}

	// Per-item normalisation, mirroring solve()'s checks and error text.
	params := make([]mec.Params, len(items))
	valid := make([]bool, len(items))
	for i, it := range items {
		p := it.Params
		if p == (mec.Params{}) {
			p = opts.Params
		}
		if p == (mec.Params{}) {
			p = mec.Defaults()
		}
		if err := p.Validate(); err != nil {
			res[i].Err = fmt.Errorf("core: %w", err)
			continue
		}
		bad := false
		for ui, u := range it.Users {
			if u.Graph == nil {
				res[i].Err = fmt.Errorf("%w: user %d", ErrNilGraph, ui)
				bad = true
				break
			}
		}
		if bad {
			continue
		}
		params[i] = p
		valid[i] = true
	}

	// The map pipeline is the reference oracle, not a hot path: loop it.
	if opts.UseMapPipeline {
		batchFallback(ctx, items, opts, params, valid, cache, res)
		return res
	}

	// Distinct graphs across the whole batch, first-appearance order,
	// split by session-cache state.
	graphIdx := make(map[*graph.Graph]int)
	var distinct []*graph.Graph
	for i, it := range items {
		if !valid[i] {
			continue
		}
		for _, u := range it.Users {
			if _, ok := graphIdx[u.Graph]; !ok {
				graphIdx[u.Graph] = len(distinct)
				distinct = append(distinct, u.Graph)
			}
		}
	}
	protos := make([][]protoPart, len(distinct))
	pstats := make([]pipelineStats, len(distinct))
	var uncached []int // indices into distinct
	for gi, g := range distinct {
		if cache != nil {
			if pp, ps, ok := cache.lookup(g); ok {
				protos[gi] = pp
				pstats[gi] = ps
				continue
			}
		}
		uncached = append(uncached, gi)
	}

	// Fuse and pipeline every graph the cache could not serve. fused[gi]
	// records the graph's span for the CSR-native evaluator below.
	pipelineStart := time.Now()
	var f *graph.FusedCSR
	fusedSpan := make(map[*graph.Graph]int)
	if len(uncached) > 0 {
		gs := make([]*graph.Graph, len(uncached))
		for k, gi := range uncached {
			gs[k] = distinct[gi]
		}
		f = graph.Fuse(gs)
		fusedOpts := opts
		if se, ok := fusedOpts.Engine.(SpectralEngine); ok {
			se.flatEigen = true
			fusedOpts.Engine = se
		}
		pp, ps, err := runPipelineFused(ctx, f, fusedOpts)
		if err != nil {
			// Per-item fallback keeps the batch API total: items still
			// succeed or fail exactly as their individual solves would.
			batchFallback(ctx, items, opts, params, valid, cache, res)
			return res
		}
		for k, gi := range uncached {
			protos[gi] = pp[k]
			pstats[gi] = ps[k]
			fusedSpan[distinct[gi]] = k
			if cache != nil {
				cache.store(distinct[gi], pp[k], ps[k])
			}
		}
	}
	pipelineTime := time.Since(pipelineStart)

	// Assemble each item exactly as solve() does. Evaluation walks the fused
	// arrays for graphs pipelined this round (their parts carry CSR indices)
	// and falls back to Placement.State for cache-served graphs.
	var mark []bool
	if f != nil {
		maxN := 0
		for k := 0; k < f.Graphs(); k++ {
			if n := int(f.NodeBase[k+1] - f.NodeBase[k]); n > maxN {
				maxN = n
			}
		}
		mark = make([]bool, maxN)
	}
	for i, it := range items {
		if !valid[i] {
			continue
		}
		iopts := opts
		iopts.Params = params[i]
		sol, err := assembleItem(it.Users, iopts, graphIdx, protos, pstats, f, fusedSpan, mark, pipelineTime)
		res[i] = BatchResult{Solution: sol, Err: err}
	}
	return res
}

// batchFallback solves the still-pending items one by one (the reference
// path): used for the map-pipeline oracle and when the fused pipeline fails.
func batchFallback(ctx context.Context, items []BatchItem, opts Options, params []mec.Params, valid []bool, cache *Session, res []BatchResult) {
	for i := range items {
		if !valid[i] {
			continue
		}
		o := opts
		o.Params = params[i]
		sol, err := solve(ctx, items[i].Users, o, cache)
		res[i] = BatchResult{Solution: sol, Err: err}
	}
}

// runPipelineFused is runPipelineCSR over a fused multi-graph view,
// demultiplexing the results back into per-graph part templates and
// counters. Every kernel it reuses is component-local and every component of
// the fused view belongs to exactly one graph, so each graph's templates are
// bit-identical to a solo runPipelineCSR over that graph.
func runPipelineFused(ctx context.Context, f *graph.FusedCSR, opts Options) ([][]protoPart, []pipelineStats, error) {
	jobs, err := buildCSRJobs(f.View, opts)
	if err != nil {
		return nil, nil, err
	}
	maxParts := opts.MaxParts
	if maxParts < 2 {
		maxParts = 2
	}
	blocksOf := make([][][]int32, len(jobs))
	spec, isSpectral := opts.Engine.(SpectralEngine)
	switch {
	case isSpectral && opts.Workers > 1:
		if err := partitionJobsSteal(ctx, jobs, spec, maxParts, opts.Workers, blocksOf); err != nil {
			return nil, nil, err
		}
	case opts.Workers == 1:
		// Serial: one split workspace across every job of the round.
		sc := &splitScratch{}
		for i := range jobs {
			blocks, err := partitionCSRScratch(ctx, &jobs[i], opts.Engine, maxParts, sc)
			if err != nil {
				return nil, nil, fmt.Errorf("core: cut sub-graph: %w", err)
			}
			blocksOf[i] = blocks
		}
	default:
		if err := parallelForEach(opts.Workers, len(jobs), func(i int) error {
			blocks, err := partitionCSR(ctx, &jobs[i], opts.Engine, maxParts)
			if err != nil {
				return fmt.Errorf("core: cut sub-graph: %w", err)
			}
			blocksOf[i] = blocks
			return nil
		}); err != nil {
			return nil, nil, err
		}
	}

	// Demux: graph k owns jobs (= components) [CompBase[k], CompBase[k+1]).
	protos := make([][]protoPart, f.Graphs())
	pstats := make([]pipelineStats, f.Graphs())
	ids := f.View.IDs()
	var sc protoScratch
	sc.prime(f.View.NumNodes(), len(jobs), true)
	for k := 0; k < f.Graphs(); k++ {
		total := 0
		for ci := f.CompBase[k]; ci < f.CompBase[k+1]; ci++ {
			total += len(blocksOf[ci])
		}
		protos[k] = make([]protoPart, 0, total)
		for ci := f.CompBase[k]; ci < f.CompBase[k+1]; ci++ {
			j := &jobs[ci]
			pstats[k].nodesAfter += j.n
			pstats[k].edgesAfter += j.nnz() / 2
			protos[k] = appendJobProtos(protos[k], j, blocksOf[ci], ids, f.NodeBase[k], true, &sc)
		}
	}
	return protos, pstats, nil
}

// assembleItem is the per-item back half of solve(): instantiate templates,
// run the greedy scheme generation, build placements, evaluate.
func assembleItem(users []UserInput, opts Options, graphIdx map[*graph.Graph]int, protos [][]protoPart, pstats []pipelineStats, f *graph.FusedCSR, fusedSpan map[*graph.Graph]int, mark []bool, pipelineTime time.Duration) (*Solution, error) {
	stats := &Stats{EngineName: opts.Engine.Name(), Users: len(users)}
	// PipelineTime is the whole fused round's pipeline cost (shared across
	// the batch, not attributable to one item).
	stats.PipelineTime = pipelineTime
	totalParts := 0
	for _, u := range users {
		totalParts += len(protos[graphIdx[u.Graph]])
	}
	parts := make([]Part, 0, totalParts)
	userPartEnd := make([]int, len(users))
	for ui, u := range users {
		stats.NodesBefore += u.Graph.NumNodes()
		stats.EdgesBefore += u.Graph.NumEdges()
		gi := graphIdx[u.Graph]
		stats.NodesAfter += pstats[gi].nodesAfter
		stats.EdgesAfter += pstats[gi].edgesAfter
		parts = instantiateProtos(parts, ui, protos[gi])
		userPartEnd[ui] = len(parts)
	}
	stats.Parts = len(parts)

	greedyStart := time.Now()
	initialObj, moves, iters := runGreedy(users, parts, opts)
	stats.GreedyTime = time.Since(greedyStart)
	stats.GreedyMoves = moves
	stats.GreedyIterations = iters

	sol := &Solution{Parts: parts, Stats: *stats, InitialObjective: initialObj}
	sol.Placements = make([]mec.Placement, len(users))
	// Size each Remote map for its final population so the inserts below
	// never grow a map mid-fill; growth buckets dominated the assembly
	// allocation profile.
	remoteNodes := make([]int, len(users))
	for _, p := range parts {
		if p.Remote {
			remoteNodes[p.User] += len(p.Nodes)
		}
	}
	for i, u := range users {
		sol.Placements[i] = mec.Placement{
			Graph:         u.Graph,
			Remote:        make(map[graph.NodeID]bool, remoteNodes[i]),
			DeviceCompute: u.DeviceCompute,
			Bandwidth:     u.Bandwidth,
			PowerTransmit: u.PowerTransmit,
		}
	}
	for _, p := range parts {
		if p.Remote {
			for _, id := range p.Nodes {
				sol.Placements[p.User].Remote[id] = true
			}
		}
	}

	states := make([]mec.UserState, len(users))
	partBase := 0
	for ui, pl := range sol.Placements {
		if k, ok := fusedSpan[users[ui].Graph]; ok {
			states[ui] = fusedUserState(f, k, parts[partBase:userPartEnd[ui]], pl, mark)
		} else {
			states[ui] = pl.State()
		}
		states[ui].LocalWork += users[ui].FixedLocalWork
		partBase = userPartEnd[ui]
	}
	eval, err := mec.Evaluate(opts.Params, states)
	if err != nil {
		return nil, err
	}
	sol.Eval = eval
	return sol, nil
}

// fusedUserState is Placement.State computed off the fused CSR: the local
// and remote work sums walk the graph's node span ascending (the same order
// as Graph.Nodes), and the cut sum walks stored edges u ascending, v>u
// ascending (the same order Graph.Edges sorts into), so every float lands in
// the same order State produces. parts are the user's parts; their idx
// slices index the graph span. mark is shared scratch, clean on entry and
// cleaned before return.
func fusedUserState(f *graph.FusedCSR, k int, parts []Part, pl mec.Placement, mark []bool) mec.UserState {
	var st mec.UserState
	st.DeviceCompute = pl.DeviceCompute
	st.Bandwidth = pl.Bandwidth
	st.PowerTransmit = pl.PowerTransmit

	for pi := range parts {
		if parts[pi].Remote {
			for _, li := range parts[pi].idx {
				mark[li] = true
			}
		}
	}
	v := f.View
	base := f.NodeBase[k]
	n := f.NodeBase[k+1] - base
	nodeW := v.NodeWeights()
	for li := int32(0); li < n; li++ {
		w := nodeW[base+li]
		if mark[li] {
			st.RemoteWork += w
		} else {
			st.LocalWork += w
		}
	}
	for li := int32(0); li < n; li++ {
		tgt, w := v.Adj(base + li)
		for e, fv := range tgt {
			lv := fv - base
			if lv > li && mark[li] != mark[lv] {
				st.CutWeight += w[e]
			}
		}
	}
	for pi := range parts {
		if parts[pi].Remote {
			for _, li := range parts[pi].idx {
				mark[li] = false
			}
		}
	}
	return st
}
