package core

import (
	"context"
	"fmt"

	"copmecs/internal/graph"
	"copmecs/internal/jobs"
	"copmecs/internal/parallel"
)

// ClusterEngine runs spectral cuts on a parallel.Runner — an in-process
// pool or a TCP executor cluster — shipping each compressed sub-graph as a
// serialised job. This is the deployment shape of the paper's Spark usage:
// the driver owns the pipeline, executors own the spectrum computations.
//
// Latency note: for loopback pools the serialisation overhead usually
// exceeds the eigenwork on well-compressed sub-graphs; the engine earns its
// keep when executors are remote machines or sub-graphs are large.
type ClusterEngine struct {
	// Runner executes the jobs (required).
	Runner parallel.Runner
	// DisableSweep turns off sweep-cut refinement on the executors.
	DisableSweep bool
}

var _ Engine = ClusterEngine{}

// Name implements Engine.
func (ClusterEngine) Name() string { return "spectral-cluster" }

// Bisect implements Engine by submitting a single cut job; ctx bounds the
// round trip, so a cancelled solve abandons in-flight cluster calls.
func (e ClusterEngine) Bisect(ctx context.Context, g *graph.Graph) ([]graph.NodeID, []graph.NodeID, error) {
	if e.Runner == nil {
		return nil, nil, fmt.Errorf("cluster engine: %w", parallel.ErrNoWorkers)
	}
	cuts, err := jobs.SubmitCuts(ctx, e.Runner, []*graph.Graph{g}, e.DisableSweep)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster engine: %w", err)
	}
	return cuts[0].SideA, cuts[0].SideB, nil
}
