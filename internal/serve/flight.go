package serve

import "sync"

// flightShardCount is the fixed power-of-two shard count of the
// singleflight table. The table has no capacity to split, so it does not
// scale with configuration the way the caches do; sixteen shards keep
// leader admission and follower attachment for different keys off each
// other's mutexes at any GOMAXPROCS the repo targets.
const flightShardCount = 16

// flightTable is the sharded singleflight registry: at most one in-flight
// solve per key, with followers attaching to the leader's pending cell.
// Shards are selected by key prefix like the solution cache, so the
// request path never serializes on a single global mutex. The admission
// invariants from the unsharded design carry over per shard: the draining
// check, the lane enqueue, and the accepted.Add all happen under the
// key's shard mutex, and Drain publishes the draining flag with a
// lock-barrier over every shard (see drainBarrier).
type flightTable struct {
	shards [flightShardCount]flightShard
}

// flightShard is one singleflight shard. The padding keeps neighbouring
// shard mutexes on separate cache lines.
type flightShard struct {
	mu sync.Mutex
	m  map[string]*pending
	_  [48]byte
}

// newFlightTable returns an empty singleflight table.
func newFlightTable() *flightTable {
	t := &flightTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*pending)
	}
	return t
}

// shard returns the shard owning key.
func (t *flightTable) shard(key string) *flightShard {
	return &t.shards[shardPrefix(key)&(flightShardCount-1)]
}

// remove deletes key's cell; the caller (finish) has already filled the
// solution cache, so no moment exists where neither table covers the key.
func (t *flightTable) remove(key string) {
	sh := t.shard(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// drainBarrier locks and unlocks every shard in turn. Called after the
// draining flag is set: any admission already holding a shard mutex
// completes (its accepted.Add happens-before the barrier returns), and
// any later admission observes the flag and rejects — so once the barrier
// returns, accepted.Wait can no longer race an Add. This is the sharded
// equivalent of flipping the flag under the old global admission mutex.
func (t *flightTable) drainBarrier() {
	for i := range t.shards {
		t.shards[i].mu.Lock()
		// The empty critical section is the point: entering the mutex
		// orders this goroutine after any admission that held it.
		t.shards[i].mu.Unlock()
	}
}
