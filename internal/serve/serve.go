// Package serve is the online serving layer over the COPMECS solver: a
// stdlib-only HTTP/JSON API through which many concurrent users submit
// function data-flow graphs and receive offloading decisions from one
// shared edge server.
//
// Three layers sit between the socket and core.Solve:
//
//   - a micro-batcher that coalesces concurrently arriving per-user
//     requests into multi-user solve rounds, so the paper's shared-server
//     contention (ActiveUsers = k in formulas (2) and (6)) is driven by
//     the live batch rather than a pre-baked user list;
//   - a solution cache keyed by the canonical graph fingerprint plus a
//     params digest, with LRU eviction and singleflight deduplication so
//     identical in-flight requests run once; behind it, a graph-intern
//     table canonicalises repeat graphs by fingerprint so one shared
//     core.Session reuses the compiled solve pipeline (compression + cuts)
//     across rounds and across parameter changes, and evicting a graph
//     releases its pipeline state;
//   - admission control: a bounded accept queue that sheds load with 429 +
//     Retry-After, per-request deadlines composed with the caller's
//     context, and graceful drain that completes every accepted request
//     before shutdown.
//
// The request path is built to stay contention-free at GOMAXPROCS-scale
// concurrency: the solution cache, the raw-body identity cache, the
// graph-intern table and the singleflight registry are all sharded by key
// prefix (power-of-two shard counts, one mutex per shard), every counter
// and the latency histogram are cache-line-padded atomics, and the accept
// queue is split into per-lane bounded MPSC rings so an enqueue is one
// CAS rather than a shared mutex. Byte-identical repeat bodies resolve
// through a digest fast path that skips JSON decoding and graph hashing
// entirely and replies with the pre-rendered cached response. Locks
// remain only where exact LRU semantics need them — per shard, never
// global. See DESIGN.md §10 for the layout and the memory-ordering notes.
//
// The cached decision for a key reflects the contention of the round that
// computed it; like any TTL-free response cache this trades bounded
// staleness for latency, and the LRU keeps the horizon short under churn.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"copmecs/internal/core"
	"copmecs/internal/graph"
	"copmecs/internal/mec"
)

// Admission-control defaults (overridable via Config).
const (
	// DefaultRequestTimeout bounds one request end to end.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultSolveTimeout bounds one dispatched solve round.
	DefaultSolveTimeout = 25 * time.Second
	// DefaultRetryAfter is the Retry-After hint on 429/503 responses.
	DefaultRetryAfter = 1 * time.Second
)

// Serving errors.
var (
	// ErrShed is the resolution of a request rejected by admission
	// control (full queue); mapped to 429.
	ErrShed = errors.New("serve: overloaded, request shed")
	// ErrDraining is the resolution of a request arriving during graceful
	// drain; mapped to 503.
	ErrDraining = errors.New("serve: draining")
)

// Config tunes a Server. The zero value serves with the spectral engine,
// mec.Defaults(), and the package's batching/admission defaults.
type Config struct {
	// ID names this backend in a fleet; it is reported by GET /v1/health
	// so a router's prober can tell instances apart. Empty is fine for a
	// standalone daemon.
	ID string
	// MaxQPS caps admitted /v1/solve requests per second (0 = unlimited).
	// Arrivals beyond the cap are shed with 429 before the body is read.
	// Capping per-backend throughput makes fleet capacity additive, which
	// is what the fleet scaling benchmark measures.
	MaxQPS float64
	// RateBurst is the MaxQPS burst allowance in requests (≤ 0 picks
	// max(1, MaxQPS/2)). Ignored when MaxQPS is 0.
	RateBurst int
	// Engine is the minimum-cut engine (nil = core.SpectralEngine{}); a
	// parallel.FallbackRunner-backed core.ClusterEngine plugs in here to
	// serve from an executor fleet with local degradation.
	Engine core.Engine
	// Params are the default MEC system constants (zero = mec.Defaults());
	// requests may override them per call.
	Params mec.Params
	// Workers bounds per-round solver parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxBatch caps the users per solve round (≤ 0 = DefaultMaxBatch).
	MaxBatch int
	// BatchWait is the round's co-arrival window (≤ 0 = DefaultBatchWait).
	BatchWait time.Duration
	// BatchLanes forces the batcher's enqueue lane count (rounded up to a
	// power of two, capped at 16; ≤ 0 picks a count from QueueDepth).
	BatchLanes int
	// QueueDepth bounds the accept queue (≤ 0 = DefaultQueueDepth);
	// arrivals beyond it are shed with 429. The depth is split across the
	// enqueue lanes.
	QueueDepth int
	// CacheSize caps the solution cache (≤ 0 = DefaultCacheSize). The
	// raw-body identity cache shares this capacity.
	CacheSize int
	// GraphCacheSize caps the graph-intern table — the number of distinct
	// application graphs whose compiled solver pipeline (compression +
	// cuts) stays warm in the shared core.Session (≤ 0 =
	// DefaultGraphCacheSize). Evicting a graph releases its pipeline state.
	GraphCacheSize int
	// RequestTimeout bounds one request end to end, composed with the
	// client's own context (≤ 0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// SolveTimeout bounds one dispatched solve round (≤ 0 =
	// DefaultSolveTimeout).
	SolveTimeout time.Duration
	// RetryAfter is the Retry-After hint on 429/503 responses (≤ 0 =
	// DefaultRetryAfter).
	RetryAfter time.Duration
	// MaxBodyBytes caps one request body (≤ 0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Limits bounds decoded graphs (zero = package defaults).
	Limits DecodeLimits
	// Journal, when non-nil, receives every accepted leader request as a
	// write-ahead record before it is enqueued, making accepted work
	// crash-durable (see durability.go). Nil keeps serving purely
	// in-memory.
	Journal Journal
	// DurabilityStats, when non-nil, supplies the journal/snapshot fields
	// of the /v1/stats durability section (the daemon wires it to its
	// durable store); the server fills in its own append-error and replay
	// fields. Setting Journal or DurabilityStats makes the section appear.
	DurabilityStats func() DurabilityStats
	// Logf, when non-nil, receives serving diagnostics.
	Logf func(format string, args ...any)
}

// withDefaults resolves zero fields to the package defaults.
func (c Config) withDefaults() Config {
	if c.Engine == nil {
		c.Engine = core.SpectralEngine{}
	}
	if c.Params == (mec.Params{}) {
		c.Params = mec.Defaults()
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = DefaultSolveTimeout
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return c
}

// Decision is one user's solved offloading decision: the unit the solution
// cache stores and singleflight followers share. Decisions are immutable
// after publication.
type Decision struct {
	// Graph is the canonical fingerprint of the solved graph — the base
	// handle for /v1/mutate deltas. Empty on decisions restored from
	// snapshots written before the field existed.
	Graph string
	// Remote lists the offloaded node IDs, ascending.
	Remote []graph.NodeID
	// LocalWork, RemoteWork and CutWeight summarise the split.
	LocalWork, RemoteWork, CutWeight float64
	// Cost is the user's share of formulas (1)–(5).
	Cost mec.UserCost
	// Objective is E + T of the whole round that produced the decision.
	Objective float64
	// BatchUsers is the round size (including duplicate multiplicity).
	BatchUsers int
	// ActiveUsers is the round's k (users with offloaded work).
	ActiveUsers int
	// Engine names the cut engine that produced the decision.
	Engine string
}

// CostJSON is the wire form of mec.UserCost.
type CostJSON struct {
	// LocalTime is formula (1).
	LocalTime float64 `json:"local_time"`
	// RemoteTime is formula (2), inclusive of WaitTime.
	RemoteTime float64 `json:"remote_time"`
	// WaitTime is the contention share wtᵢ of formula (2).
	WaitTime float64 `json:"wait_time"`
	// TransmissionTime is formula (5).
	TransmissionTime float64 `json:"transmission_time"`
	// LocalEnergy is formula (3).
	LocalEnergy float64 `json:"local_energy"`
	// TransmissionEnergy is formula (4).
	TransmissionEnergy float64 `json:"transmission_energy"`
	// ServerShare is Iˢᵢ under processor sharing.
	ServerShare float64 `json:"server_share"`
}

// SolveResponse is the POST /v1/solve 200 body.
type SolveResponse struct {
	// Graph is the solved graph's canonical fingerprint — the base handle
	// for POST /v1/mutate deltas. Omitted only for decisions restored from
	// pre-field snapshots. (MutateResponse's own Graph field, one level
	// shallower, takes precedence there.)
	Graph string `json:"graph,omitempty"`
	// Remote lists the node IDs to offload, ascending.
	Remote []graph.NodeID `json:"remote"`
	// LocalWork is the computation kept on the device.
	LocalWork float64 `json:"local_work"`
	// RemoteWork is the computation offloaded to the edge server.
	RemoteWork float64 `json:"remote_work"`
	// CutWeight is the communication crossing the split.
	CutWeight float64 `json:"cut_weight"`
	// Cost is the user's cost breakdown.
	Cost CostJSON `json:"cost"`
	// BatchObjective is E + T of the round that solved the request.
	BatchObjective float64 `json:"batch_objective"`
	// BatchUsers is that round's size (including duplicate multiplicity).
	BatchUsers int `json:"batch_users"`
	// ActiveUsers is that round's k.
	ActiveUsers int `json:"active_users"`
	// Engine names the cut engine used.
	Engine string `json:"engine"`
	// Cached reports a solution-cache hit.
	Cached bool `json:"cached"`
	// Deduped reports the request was collapsed onto an in-flight twin.
	Deduped bool `json:"deduped"`
}

// ErrorResponse is the body of every non-200 JSON reply.
type ErrorResponse struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}

// Server is the copmecsd serving core: admission control in front of a
// micro-batcher in front of core.Solve, with a fingerprint-keyed solution
// cache shortcutting repeat work. Construct with New, start the dispatch
// loop with Start, expose Handler over HTTP, and stop with Drain.
type Server struct {
	cfg     Config
	cache   *shardedCache
	bodies  *bodyCache
	st      counters
	b       *batcher
	sess    *core.Session
	graphs  *shardedIntern
	flight  *flightTable
	limiter *rateLimiter
	begin   time.Time

	draining atomic.Bool
	accepted sync.WaitGroup
	started  atomic.Bool
	recovery atomic.Pointer[RecoveryStats]
}

// New returns an unstarted server. cfg.Params must validate.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		cfg:    cfg,
		cache:  newShardedCache(cfg.CacheSize),
		bodies: newBodyCache(cfg.CacheSize),
		flight: newFlightTable(),
		begin:  time.Now(),
	}
	if cfg.MaxQPS > 0 {
		s.limiter = newRateLimiter(cfg.MaxQPS, cfg.RateBurst)
	}
	// One Session per server: rounds over a repeat graph skip compression
	// and cuts entirely (only Algorithm 2's greedy reruns). Params vary per
	// round via SolveWithParams — the cached pipeline is params-independent.
	s.sess = core.NewSession(core.Options{
		Engine:  cfg.Engine,
		Workers: cfg.Workers,
	})
	s.graphs = newShardedIntern(cfg.GraphCacheSize, func(g *graph.Graph) {
		s.sess.Invalidate(g)
	})
	s.b = newBatcher(cfg.MaxBatch, cfg.QueueDepth, cfg.BatchLanes, cfg.BatchWait, s.dispatchRound)
	return s, nil
}

// Start launches the batcher's dispatch loop. ctx bounds every solve the
// server will run (the PR-2 context spine): cancelling it fails in-flight
// rounds, so for graceful shutdown call Drain before cancelling. Start is
// idempotent; only the first call starts the loop.
func (s *Server) Start(ctx context.Context) {
	if s.started.CompareAndSwap(false, true) {
		go s.b.run(ctx)
	}
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Drain gracefully stops the server: new solve requests are rejected with
// 503, every already-accepted request is solved and delivered, and the
// dispatch loop exits. It returns nil once the drain is complete, or
// ctx.Err() if ctx expires first (the loop is then stopped anyway and
// unresolved requests fail with their own deadlines).
func (s *Server) Drain(ctx context.Context) error {
	already := s.draining.Swap(true)
	// Publish the flag to every admission shard: after the barrier, any
	// admit still in flight has completed its accepted.Add, and any later
	// admit observes draining and rejects — so Wait cannot race an Add.
	s.flight.drainBarrier()
	if !already {
		s.logf("serve: draining: rejecting new work, flushing accepted requests")
	}

	done := make(chan struct{})
	go func() {
		s.accepted.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if s.started.Load() {
		s.b.stopOnce()
		if err == nil {
			select {
			case <-s.b.done:
			case <-ctx.Done():
				err = ctx.Err()
			}
		}
	}
	if err == nil && !already {
		s.logf("serve: drain complete")
	}
	return err
}

// Draining reports whether graceful drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats snapshots the server's counters for /v1/stats. Every counter is
// read individually and atomically; no lock covers the snapshot, so a
// concurrent storm skews related counters against each other at most by
// the requests in flight during the scan.
func (s *Server) Stats() Stats {
	var durability *DurabilityStats
	if s.cfg.Journal != nil || s.cfg.DurabilityStats != nil {
		d := DurabilityStats{LastFsyncAgeMs: -1, LastSnapshotAgeMs: -1}
		if s.cfg.DurabilityStats != nil {
			d = s.cfg.DurabilityStats()
		}
		d.AppendErrors = s.st.journalErrors.Load()
		d.Replay = s.recovery.Load()
		durability = &d
	}
	return Stats{
		Durability:   durability,
		Requests:     s.st.requests.Load(),
		Solved:       s.st.solved.Load(),
		BadRequests:  s.st.badRequests.Load(),
		Shed:         s.st.shed.Load(),
		RateLimited:  s.st.rateLimited.Load(),
		DrainRejects: s.st.drainRejects.Load(),
		Deduped:      s.st.deduped.Load(),
		SolveErrors:  s.st.solveErrors.Load(),
		Timeouts:     s.st.timeouts.Load(),
		InFlight:     s.st.inFlight.Load(),
		Draining:     s.draining.Load(),
		Cache: CacheStats{
			Hits:      s.st.cacheHits.Load(),
			Misses:    s.st.cacheMisses.Load(),
			BodyHits:  s.st.bodyHits.Load(),
			Size:      s.cache.len(),
			Capacity:  s.cache.capacity(),
			Evictions: s.cache.evicted(),
			Shards:    s.cache.occupancy(),
		},
		GraphCache: GraphCacheStats{
			Size:      s.graphs.len(),
			Capacity:  s.graphs.capacity(),
			Reused:    s.graphs.reusedCount(),
			Evictions: s.graphs.evictedCount(),
			Pipelines: s.sess.CachedGraphs(),
			Shards:    s.graphs.occupancy(),
		},
		Incremental: IncrementalStats{
			Mutates:           s.st.mutates.Load(),
			CacheHits:         s.st.mutateHits.Load(),
			DeltaSolves:       s.st.deltaSolves.Load(),
			ColdFallbacks:     s.st.coldFallbacks.Load(),
			LanczosItersSaved: s.st.lanczosItersSaved.Load(),
			Errors:            s.st.mutateErrors.Load(),
		},
		Batch: BatchStats{
			Rounds:      s.st.batches.Load(),
			Users:       s.st.batchedUsers.Load(),
			MaxUsers:    s.st.maxBatch.Load(),
			FusedRounds: s.st.fusedRounds.Load(),
			FusedGraphs: s.st.fusedGraphs.Load(),
			QueueDepth:  s.b.depth(),
			Lanes:       s.b.laneStats(),
		},
		Latency: s.st.lat.snapshot(),
	}
}

// Handler returns the service mux: POST /v1/solve, POST /v1/mutate,
// GET /v1/healthz, GET /v1/health, GET /v1/stats. Profiling lives on the
// daemon's separate debug mux, not here, so the service port never
// exposes pprof.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/mutate", s.handleMutate)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/health", s.handleHealth)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// HealthResponse is the GET /v1/health body: the cheap probe document a
// fleet router polls. Unlike /v1/healthz (which flips to 503 for load
// balancers), /v1/health always answers 200 and reports the state in the
// body, so a prober can distinguish "draining" from "dead" and never
// touches the solve path.
type HealthResponse struct {
	// Status is "ready" or "draining".
	Status string `json:"status"`
	// ID is the backend's configured identity (omitted when unset).
	ID string `json:"id,omitempty"`
	// UptimeS is seconds since the server was constructed.
	UptimeS float64 `json:"uptime_s"`
}

// handleHealth reports the backend's readiness state and uptime. It does
// no solving, no cache access and no locking: one atomic load plus a
// small JSON encode, cheap enough to poll at any probing interval.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	status := "ready"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:  status,
		ID:      s.cfg.ID,
		UptimeS: time.Since(s.begin).Seconds(),
	})
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it while accepted work flushes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStats renders the counters snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// bodyBufPool recycles request-body buffers across /v1/solve calls, so
// the hot path does not grow a fresh buffer per request.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// handleSolve is the serving hot path: body digest → (fast path: cached
// identity + cached decision) or (decode → key → cache) → singleflight →
// admission → lane → batch → await.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.st.requests.Add(1)
	s.st.inFlight.Add(1)
	defer s.st.inFlight.Add(-1)
	defer func() { s.st.lat.observe(time.Since(start)) }()

	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// The rate cap is checked before the body is even read: shedding excess
	// offered load must not cost a body copy, a hash or a decode.
	if !s.limiter.allow() {
		s.st.rateLimited.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "serve: rate limit exceeded")
		return
	}
	req, key, fp, params, handled := s.resolveSolve(w, r)
	if handled {
		return
	}

	// Rewrite the freshly decoded graph to its interned canonical instance
	// so the session's identity-keyed pipeline cache hits across requests.
	req.Graph = s.graphs.intern(fp, req.Graph)

	// Encode the write-ahead record outside the flight-shard lock; only a
	// leader admit actually appends it. An encode failure (impossible for
	// a graph that just decoded) degrades to serving without durability.
	var jrec []byte
	if s.cfg.Journal != nil {
		var jerr error
		if jrec, jerr = encodeAccepted(req, params); jerr != nil {
			s.st.journalErrors.Add(1)
			s.logf("serve: journal encode: %v", jerr)
		}
	}

	p, leader, aerr := s.admit(key, fp, req, params, jrec)
	if aerr != nil {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		if errors.Is(aerr, ErrDraining) {
			s.st.drainRejects.Add(1)
			writeError(w, http.StatusServiceUnavailable, aerr.Error())
		} else {
			s.st.shed.Add(1)
			writeError(w, http.StatusTooManyRequests, aerr.Error())
		}
		return
	}
	if leader {
		s.st.cacheMisses.Add(1)
	} else {
		s.st.deduped.Add(1)
	}
	s.await(w, r, p, !leader)
}

// resolveSolve reads the request body and resolves it to a decoded
// request plus its cache identities, writing the response itself (and
// returning handled = true) for malformed bodies and for cache hits.
//
// The fast path: the SHA-256 digest of the raw body is looked up in the
// body-identity cache; a byte-identical repeat of a previously valid
// request skips JSON decoding and graph hashing entirely, and a live
// solution-cache entry answers with its pre-rendered bytes. Any miss
// falls through to the full decode path, which back-fills the identity
// for the next repeat.
func (s *Server) resolveSolve(w http.ResponseWriter, r *http.Request) (req *SolveRequest, key, fp string, params mec.Params, handled bool) {
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyBufPool.Put(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)); err != nil {
		s.st.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%v: %v", ErrBadRequest, err))
		return nil, "", "", params, true
	}
	digest := sha256.Sum256(buf.Bytes())
	if id, ok := s.bodies.get(digest); ok {
		if dec, hit, ok := s.cache.get(id.key); ok {
			s.st.cacheHits.Add(1)
			s.st.bodyHits.Add(1)
			s.st.solved.Add(1)
			writeHit(w, dec, hit)
			return nil, "", "", params, true
		}
		// Identity known but the decision was evicted: decode below and
		// take the solve path (the identity mapping stays valid).
	}

	req, err := DecodeSolveRequest(bytes.NewReader(buf.Bytes()), s.cfg.Limits)
	if err != nil {
		s.st.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, "", "", params, true
	}
	params = s.cfg.Params
	if req.Params != nil {
		params = req.Params.merge(params)
	}
	if err := params.Validate(); err != nil {
		s.st.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, "", "", params, true
	}
	key, fp, err = requestKey(req, params)
	if err != nil {
		s.st.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, "", "", params, true
	}
	// The body decoded and validated: remember its identity so the next
	// byte-identical arrival takes the fast path.
	s.bodies.put(digest, requestIdentity{key: key, fp: fp})

	if dec, hit, ok := s.cache.get(key); ok {
		s.st.cacheHits.Add(1)
		s.st.solved.Add(1)
		writeHit(w, dec, hit)
		return nil, "", "", params, true
	}
	return req, key, fp, params, false
}

// admit runs singleflight attachment and admission control under the
// key's flight-shard lock. It returns (cell, true, nil) for an accepted
// leader, (cell, false, nil) for a follower sharing an in-flight cell,
// and (nil, false, ErrShed or ErrDraining) for a rejected request.
// Followers are admitted even while draining: their cell is already
// accepted work. A leader's jrec (when non-nil) is journaled before the
// task is enqueued — write-ahead: once the solve can produce a 200, the
// record is already in the OS page cache — and released immediately if
// the enqueue sheds (a 429 is not accepted work).
func (s *Server) admit(key, fp string, req *SolveRequest, params mec.Params, jrec []byte) (*pending, bool, error) {
	sh := s.flight.shard(key)
	sh.mu.Lock()
	if p, ok := sh.m[key]; ok {
		p.mult.Add(1)
		sh.mu.Unlock()
		return p, false, nil
	}
	if s.draining.Load() {
		sh.mu.Unlock()
		return nil, false, ErrDraining
	}
	p := newPending(key)
	task := &solveTask{
		p: p,
		user: core.UserInput{
			Graph:          req.Graph,
			FixedLocalWork: req.FixedLocalWork,
			DeviceCompute:  req.DeviceCompute,
			Bandwidth:      req.Bandwidth,
			PowerTransmit:  req.PowerTransmit,
		},
		params: params,
		pkey:   paramsDigest(params),
		fp:     fp,
		lane:   shardPrefix(fp),
	}
	if jrec != nil {
		if seg, jerr := s.cfg.Journal.Append(jrec); jerr != nil {
			// Serve anyway: durability degrades, availability does not.
			s.st.journalErrors.Add(1)
			s.logf("serve: journal append: %v", jerr)
		} else {
			task.jseg, task.journaled = seg, true
		}
	}
	if !s.b.enqueue(task) {
		if task.journaled {
			s.cfg.Journal.Applied(task.jseg)
		}
		sh.mu.Unlock()
		return nil, false, ErrShed
	}
	// Under the same shard lock as the draining check: Drain flips the
	// flag and then barriers over every shard, so every Add
	// happens-before accepted.Wait can return.
	sh.m[key] = p
	s.accepted.Add(1)
	sh.mu.Unlock()
	return p, true, nil
}

// await blocks until the request's cell resolves or its deadline expires,
// then writes the response.
func (s *Server) await(w http.ResponseWriter, r *http.Request, p *pending, deduped bool) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	select {
	case <-p.done:
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.st.timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded waiting for solve")
		}
		// Client cancellation: nothing useful to write; the solve still
		// completes and fills the cache for the retry.
		return
	}
	if p.err != nil {
		writeError(w, http.StatusInternalServerError, p.err.Error())
		return
	}
	s.st.solved.Add(1)
	writeDecision(w, p.dec, false, deduped)
}

// dispatchRound solves one batcher round. Tasks with different resolved
// params cannot share a server model, so the round is partitioned by
// params digest (first-appearance order) into one batch item each, and the
// whole round goes through Session.BatchSolve in a single fused pass:
// every cache-missing distinct graph across all items is compiled,
// compressed and cut in one mega-instance instead of once per group. The
// per-item solutions are bit-for-bit what per-group Solve calls would have
// produced, so nothing downstream can tell the difference. Each task is
// expanded by its live multiplicity (capped at MaxBatch) so
// singleflight-collapsed duplicates still count toward the paper's
// ActiveUsers contention; identical users are symmetric in the model, so
// the representative's decision is shared across its duplicates.
// SolveTimeout bounds the fused round as a whole — the round is one solve
// now, not a sequence of them.
func (s *Server) dispatchRound(ctx context.Context, round []*solveTask) {
	groups := make(map[string][]*solveTask)
	var order []string
	for _, t := range round {
		if _, ok := groups[t.pkey]; !ok {
			order = append(order, t.pkey)
		}
		groups[t.pkey] = append(groups[t.pkey], t)
	}

	items := make([]core.BatchItem, len(order))
	reps := make([][]int, len(order)) // reps[g][i]: task i's representative user index
	distinct := make(map[*graph.Graph]struct{}, len(round))
	for gi, pk := range order {
		tasks := groups[pk]
		var users []core.UserInput
		rep := make([]int, len(tasks))
		for i, t := range tasks {
			rep[i] = len(users)
			mult := int(t.p.mult.Load())
			if mult < 1 {
				mult = 1
			}
			if mult > s.b.maxBatch {
				mult = s.b.maxBatch
			}
			for j := 0; j < mult; j++ {
				users = append(users, t.user)
			}
			distinct[t.user.Graph] = struct{}{}
		}
		s.st.observeBatch(len(users))
		items[gi] = core.BatchItem{Users: users, Params: tasks[0].params}
		reps[gi] = rep
	}
	// Interned graphs are pointer-canonical, so pointer identity counts
	// distinct applications; a round spanning >= 2 of them is where fusion
	// actually merged work.
	if len(distinct) >= 2 {
		s.st.fusedRounds.Add(1)
		s.st.fusedGraphs.Add(uint64(len(distinct)))
	}

	sctx, cancel := context.WithTimeout(ctx, s.cfg.SolveTimeout)
	defer cancel()
	results := s.sess.BatchSolve(sctx, items)
	for gi, pk := range order {
		tasks := groups[pk]
		r := results[gi]
		if r.Err != nil {
			s.st.solveErrors.Add(1)
			s.logf("serve: round of %d users failed: %v", len(items[gi].Users), r.Err)
			for _, t := range tasks {
				s.finish(t, nil, r.Err)
			}
			continue
		}
		for i, t := range tasks {
			s.finish(t, decisionFor(t.fp, r.Solution, reps[gi][i], len(items[gi].Users)), nil)
		}
	}
}

// finish publishes a task's result: cache fill first (decision plus its
// pre-rendered hit response), then release of the task's journal record
// — strictly after the cache fill, so a snapshot scan that could observe
// the segment as fully applied necessarily sees the decision — then
// removal from the singleflight table (so no moment exists where neither
// covers the key), then the wakeup of every waiter. A failed task's
// record is released too: the 500 is a delivered response, and a crash
// before this point replays (and retries) the request anyway.
func (s *Server) finish(t *solveTask, dec *Decision, err error) {
	if dec != nil {
		s.cache.put(t.p.key, dec, renderHit(dec))
	}
	if t.journaled {
		s.cfg.Journal.Applied(t.jseg)
	}
	s.flight.remove(t.p.key)
	t.p.dec, t.p.err = dec, err
	close(t.p.done)
	s.accepted.Done()
}

// decisionFor extracts user u's decision from a solved round of n users;
// fp is the canonical fingerprint of the user's graph.
func decisionFor(fp string, sol *core.Solution, u, n int) *Decision {
	pl := sol.Placements[u]
	st := pl.State()
	remote := make([]graph.NodeID, 0, len(pl.Remote))
	for id := range pl.Remote {
		remote = append(remote, id)
	}
	sort.Slice(remote, func(a, b int) bool { return remote[a] < remote[b] })
	return &Decision{
		Graph:       fp,
		Remote:      remote,
		LocalWork:   st.LocalWork,
		RemoteWork:  st.RemoteWork,
		CutWeight:   st.CutWeight,
		Cost:        sol.Eval.PerUser[u],
		Objective:   sol.Eval.Objective,
		BatchUsers:  n,
		ActiveUsers: sol.Eval.ActiveUsers,
		Engine:      sol.Stats.EngineName,
	}
}

// solveResponseFor assembles the wire form of dec.
func solveResponseFor(dec *Decision, cached, deduped bool) SolveResponse {
	return SolveResponse{
		Graph:      dec.Graph,
		Remote:     dec.Remote,
		LocalWork:  dec.LocalWork,
		RemoteWork: dec.RemoteWork,
		CutWeight:  dec.CutWeight,
		Cost: CostJSON{
			LocalTime:          dec.Cost.LocalTime,
			RemoteTime:         dec.Cost.RemoteTime,
			WaitTime:           dec.Cost.WaitTime,
			TransmissionTime:   dec.Cost.TransmissionTime,
			LocalEnergy:        dec.Cost.LocalEnergy,
			TransmissionEnergy: dec.Cost.TransmissionEnergy,
			ServerShare:        dec.Cost.ServerShare,
		},
		BatchObjective: dec.Objective,
		BatchUsers:     dec.BatchUsers,
		ActiveUsers:    dec.ActiveUsers,
		Engine:         dec.Engine,
		Cached:         cached,
		Deduped:        deduped,
	}
}

// renderHit pre-encodes dec's cached=true response at cache-fill time, so
// every subsequent hit writes stored bytes instead of re-encoding JSON.
// The bytes match writeJSON's encoder output (trailing newline included).
// A marshal failure — impossible for these plain fields — degrades to
// nil, which writeHit re-encodes on demand.
func renderHit(dec *Decision) []byte {
	b, err := json.Marshal(solveResponseFor(dec, true, false))
	if err != nil {
		return nil
	}
	return append(b, '\n')
}

// writeHit answers a cache hit: pre-rendered bytes when available, a
// fresh encoding otherwise.
func writeHit(w http.ResponseWriter, dec *Decision, hit []byte) {
	if hit == nil {
		writeDecision(w, dec, true, false)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(hit)
}

// writeDecision renders a 200 solve response.
func writeDecision(w http.ResponseWriter, dec *Decision, cached, deduped bool) {
	writeJSON(w, http.StatusOK, solveResponseFor(dec, cached, deduped))
}

// writeJSON writes v as a JSON response. Encoding failures after the
// header is sent can only be reported by aborting the connection, which
// the http server does on write error; the encode error itself is
// deliberately dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// retryAfterSeconds renders d as a whole-seconds Retry-After value (≥ 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
