package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultCacheSize is the default solution-cache capacity (entries).
const DefaultCacheSize = 1024

// lruCache is a fixed-capacity LRU of solved decisions keyed by request
// key (graph fingerprint ⊕ params digest ⊕ per-user overrides). Entries
// are immutable *Decision values shared between the cache and in-flight
// responses, so a hit is a pointer copy. Safe for concurrent use.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recent
	items     map[string]*list.Element
	evictions atomic.Uint64
}

// lruEntry is one cache slot.
type lruEntry struct {
	key string
	dec *Decision
}

// newLRUCache returns a cache holding at most capacity entries (≤ 0 means
// DefaultCacheSize).
func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached decision for key, promoting it to most recent.
func (c *lruCache) get(key string) (*Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).dec, true
}

// put stores dec under key, evicting the least-recently-used entry at
// capacity. Storing an existing key refreshes its value and recency.
func (c *lruCache) put(key string, dec *Decision) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).dec = dec
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, dec: dec})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// evicted reports the cumulative eviction count.
func (c *lruCache) evicted() uint64 { return c.evictions.Load() }
