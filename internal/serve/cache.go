package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultCacheSize is the default solution-cache capacity (entries).
const DefaultCacheSize = 1024

// lruCache is a fixed-capacity LRU of solved decisions keyed by request
// key (graph fingerprint ⊕ params digest ⊕ per-user overrides). Entries
// are immutable *Decision values shared between the cache and in-flight
// responses, so a hit is a pointer copy; alongside each decision the entry
// carries the pre-rendered cache-hit response body, so a hit writes stored
// bytes instead of re-encoding JSON. Safe for concurrent use; it is the
// per-shard building block of shardedCache.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recent
	items     map[string]*list.Element
	evictions atomic.Uint64
}

// lruEntry is one cache slot.
type lruEntry struct {
	key string
	dec *Decision
	hit []byte // rendered cached=true response, nil until first needed
}

// newLRUCache returns a cache holding at most capacity entries (≤ 0 means
// DefaultCacheSize).
func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached decision and its rendered hit body for key,
// promoting the entry to most recent.
func (c *lruCache) get(key string) (*Decision, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, nil, false
	}
	c.ll.MoveToFront(el)
	ent := el.Value.(*lruEntry)
	return ent.dec, ent.hit, true
}

// put stores dec (and its optional pre-rendered hit body) under key,
// evicting the least-recently-used entry at capacity. Storing an existing
// key refreshes its value and recency.
func (c *lruCache) put(key string, dec *Decision, hit []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*lruEntry)
		ent.dec, ent.hit = dec, hit
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, dec: dec, hit: hit})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// dump visits every entry oldest-to-newest (so re-putting the stream into
// a fresh cache reproduces this cache's LRU recency). Entries are copied
// under the lock and fn runs outside it — decisions are immutable, so the
// copied pointers stay valid; fn returning false stops the walk.
func (c *lruCache) dump(fn func(key string, dec *Decision) bool) bool {
	c.mu.Lock()
	type kv struct {
		key string
		dec *Decision
	}
	ents := make([]kv, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*lruEntry)
		ents = append(ents, kv{key: ent.key, dec: ent.dec})
	}
	c.mu.Unlock()
	for _, e := range ents {
		if !fn(e.key, e.dec) {
			return false
		}
	}
	return true
}

// evicted reports the cumulative eviction count.
func (c *lruCache) evicted() uint64 { return c.evictions.Load() }

// shardedCache spreads the solution cache over shardCountFor(capacity)
// independent lruCache shards selected by key prefix, so parallel cache
// hits for different keys never contend on one mutex. Total capacity is
// preserved (split evenly, rounded up), eviction stays exact LRU within a
// shard, and the aggregate counters feed the flat /v1/stats fields
// unchanged.
type shardedCache struct {
	shards []*lruCache
	mask   uint32
}

// newShardedCache returns a sharded cache with total capacity entries
// (≤ 0 means DefaultCacheSize).
func newShardedCache(capacity int) *shardedCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	n := shardCountFor(capacity)
	per := (capacity + n - 1) / n
	c := &shardedCache{shards: make([]*lruCache, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i] = newLRUCache(per)
	}
	return c
}

// shard returns the shard owning key.
func (c *shardedCache) shard(key string) *lruCache {
	return c.shards[shardPrefix(key)&c.mask]
}

// get returns the cached decision and rendered hit body for key.
func (c *shardedCache) get(key string) (*Decision, []byte, bool) {
	return c.shard(key).get(key)
}

// put stores dec and its rendered hit body under key.
func (c *shardedCache) put(key string, dec *Decision, hit []byte) {
	c.shard(key).put(key, dec, hit)
}

// len reports the aggregate entry count across shards.
func (c *shardedCache) len() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.len()
	}
	return n
}

// capacity reports the aggregate configured capacity across shards.
func (c *shardedCache) capacity() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.cap
	}
	return n
}

// dump visits every entry shard by shard, oldest-to-newest within each
// shard (see lruCache.dump); fn returning false stops the walk.
func (c *shardedCache) dump(fn func(key string, dec *Decision) bool) {
	for _, sh := range c.shards {
		if !sh.dump(fn) {
			return
		}
	}
}

// evicted reports the aggregate eviction count across shards.
func (c *shardedCache) evicted() uint64 {
	var n uint64
	for _, sh := range c.shards {
		n += sh.evicted()
	}
	return n
}

// occupancy reports per-shard size and capacity, for the /v1/stats
// per-shard section (skewed shards indicate a pathological key
// distribution).
func (c *shardedCache) occupancy() []ShardOccupancy {
	occ := make([]ShardOccupancy, len(c.shards))
	for i, sh := range c.shards {
		occ[i] = ShardOccupancy{Size: sh.len(), Capacity: sh.cap}
	}
	return occ
}
