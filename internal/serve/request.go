package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"copmecs/internal/graph"
	"copmecs/internal/mec"
)

// Decode limits (defaults; overridable via Config).
const (
	// DefaultMaxBodyBytes caps one request body.
	DefaultMaxBodyBytes = 8 << 20
	// DefaultMaxNodes caps the decoded graph's node count.
	DefaultMaxNodes = 100_000
	// DefaultMaxEdges caps the decoded graph's edge count.
	DefaultMaxEdges = 1_000_000
)

// Decoder errors. Handlers map all of them to 400 Bad Request.
var (
	// ErrBadRequest wraps every malformed-body failure.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrTooLarge is returned when the graph exceeds the configured node or
	// edge limits (or the body exceeds the byte cap).
	ErrTooLarge = errors.New("serve: request too large")
	// ErrNoGraph is returned when the body carries no graph.
	ErrNoGraph = errors.New("serve: request has no graph")
)

// ParamsJSON optionally overrides the daemon-wide mec.Params for the
// request's solve round. Zero fields keep the server's defaults; requests
// are micro-batched only with requests sharing the same resolved Params
// (contention is only meaningful between users of the same edge server).
type ParamsJSON struct {
	// ServerCapacity overrides Params.ServerCapacity when positive.
	ServerCapacity float64 `json:"server_capacity,omitempty"`
	// DeviceCompute overrides Params.DeviceCompute when positive.
	DeviceCompute float64 `json:"device_compute,omitempty"`
	// PowerCompute overrides Params.PowerCompute when positive.
	PowerCompute float64 `json:"power_compute,omitempty"`
	// PowerTransmit overrides Params.PowerTransmit when positive.
	PowerTransmit float64 `json:"power_transmit,omitempty"`
	// Bandwidth overrides Params.Bandwidth when positive.
	Bandwidth float64 `json:"bandwidth,omitempty"`
}

// merge resolves the override against the server defaults.
func (p ParamsJSON) merge(base mec.Params) mec.Params {
	if p.ServerCapacity > 0 {
		base.ServerCapacity = p.ServerCapacity
	}
	if p.DeviceCompute > 0 {
		base.DeviceCompute = p.DeviceCompute
	}
	if p.PowerCompute > 0 {
		base.PowerCompute = p.PowerCompute
	}
	if p.PowerTransmit > 0 {
		base.PowerTransmit = p.PowerTransmit
	}
	if p.Bandwidth > 0 {
		base.Bandwidth = p.Bandwidth
	}
	return base
}

// SolveRequest is the POST /v1/solve body: one user's function data-flow
// graph plus optional system-parameter and per-user overrides (the
// heterogeneous-link generalisation of core.UserInput).
type SolveRequest struct {
	// Graph is the user's function data-flow graph (required).
	Graph *graph.Graph `json:"graph"`
	// Params optionally overrides the daemon's mec.Params.
	Params *ParamsJSON `json:"params,omitempty"`
	// FixedLocalWork is computation pinned to the device.
	FixedLocalWork float64 `json:"fixed_local_work,omitempty"`
	// DeviceCompute overrides the default device speed when positive.
	DeviceCompute float64 `json:"device_compute,omitempty"`
	// Bandwidth overrides the default uplink rate when positive.
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// PowerTransmit overrides the default radio power when positive.
	PowerTransmit float64 `json:"power_transmit,omitempty"`
}

// DecodeLimits bounds what DecodeSolveRequest accepts. The zero value means
// the package defaults.
type DecodeLimits struct {
	// MaxNodes caps the graph's node count (≤ 0 means DefaultMaxNodes).
	MaxNodes int
	// MaxEdges caps the graph's edge count (≤ 0 means DefaultMaxEdges).
	MaxEdges int
}

// withDefaults resolves zero fields to the package defaults.
func (l DecodeLimits) withDefaults() DecodeLimits {
	if l.MaxNodes <= 0 {
		l.MaxNodes = DefaultMaxNodes
	}
	if l.MaxEdges <= 0 {
		l.MaxEdges = DefaultMaxEdges
	}
	return l
}

// DecodeSolveRequest reads one JSON request body, rejecting malformed JSON,
// unknown fields, missing graphs, and graphs over the limits. Every error
// wraps ErrBadRequest (ErrTooLarge and ErrNoGraph do too), so handlers can
// map the whole family to one status code; it never panics on hostile
// input (fuzzed in fuzz_test.go).
func DecodeSolveRequest(r io.Reader, limits DecodeLimits) (*SolveRequest, error) {
	limits = limits.withDefaults()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req SolveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// A second JSON value after the request is a framing error.
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("%w: trailing data after request", ErrBadRequest)
	}
	if req.Graph == nil || req.Graph.NumNodes() == 0 {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, ErrNoGraph)
	}
	if n := req.Graph.NumNodes(); n > limits.MaxNodes {
		return nil, fmt.Errorf("%w: %w: %d nodes (limit %d)", ErrBadRequest, ErrTooLarge, n, limits.MaxNodes)
	}
	if m := req.Graph.NumEdges(); m > limits.MaxEdges {
		return nil, fmt.Errorf("%w: %w: %d edges (limit %d)", ErrBadRequest, ErrTooLarge, m, limits.MaxEdges)
	}
	if req.FixedLocalWork < 0 || req.DeviceCompute < 0 || req.Bandwidth < 0 || req.PowerTransmit < 0 {
		return nil, fmt.Errorf("%w: negative override", ErrBadRequest)
	}
	if p := req.Params; p != nil &&
		(p.ServerCapacity < 0 || p.DeviceCompute < 0 || p.PowerCompute < 0 ||
			p.PowerTransmit < 0 || p.Bandwidth < 0) {
		return nil, fmt.Errorf("%w: negative params override", ErrBadRequest)
	}
	return &req, nil
}

// paramsDigest hashes the resolved system parameters; requests are batched
// into solve rounds only with requests sharing this digest.
func paramsDigest(p mec.Params) string {
	h := sha256.New()
	writeFloats(h, p.ServerCapacity, p.DeviceCompute, p.PowerCompute, p.PowerTransmit, p.Bandwidth)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// requestKey computes the request's two cache identities in one graph
// encoding pass: fp is the canonical graph fingerprint (the graph-intern
// key, matching graph.Fingerprint), and key — fp plus the resolved params
// and the per-user overrides — is the solution-cache and singleflight key.
// Two requests with equal keys are interchangeable: same graph content,
// same system constants, same device/link overrides.
func requestKey(req *SolveRequest, params mec.Params) (key, fp string, err error) {
	gh := sha256.New()
	if err := req.Graph.WriteBinary(gh); err != nil {
		return "", "", fmt.Errorf("serve: request key: %w", err)
	}
	fp = hex.EncodeToString(gh.Sum(nil))
	h := sha256.New()
	_, _ = io.WriteString(h, fp)
	writeFloats(h,
		params.ServerCapacity, params.DeviceCompute, params.PowerCompute,
		params.PowerTransmit, params.Bandwidth,
		req.FixedLocalWork, req.DeviceCompute, req.Bandwidth, req.PowerTransmit)
	return hex.EncodeToString(h.Sum(nil)), fp, nil
}

// writeFloats appends the canonical little-endian encoding of each value
// to the hash. Hash writes never fail.
func writeFloats(w io.Writer, vals ...float64) {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = w.Write(buf[:])
	}
}
