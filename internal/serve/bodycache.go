package serve

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// requestIdentity is what one successfully decoded request body resolves
// to: the solution-cache/singleflight key and the canonical graph
// fingerprint. Both are deterministic functions of the body bytes (the
// server's default params are fixed at construction), so a byte-identical
// repeat body may reuse them without re-decoding the JSON or re-hashing
// the graph.
type requestIdentity struct {
	key string
	fp  string
}

// bodyCache is a sharded LRU from the SHA-256 digest of a raw request body
// to its requestIdentity. It is the hot-path shortcut in front of the
// JSON decoder: repeat bodies (the dominant traffic in the paper's
// many-users-few-apps regime) resolve to their cache key in one hash pass
// over the bytes. It is conservative by construction — a semantically
// equal but byte-different body simply misses and takes the full decode
// path — and only ever stores identities of bodies that decoded and
// validated successfully.
type bodyCache struct {
	shards []*bodyShard
	mask   uint32
}

// bodyShard is one bodyCache shard: a mutex-guarded exact LRU.
type bodyShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[[sha256.Size]byte]*list.Element
}

// bodyEntry is one shard slot.
type bodyEntry struct {
	digest [sha256.Size]byte
	id     requestIdentity
}

// newBodyCache returns a body-identity cache with total capacity entries
// (≤ 0 means DefaultCacheSize), sharded like the solution cache.
func newBodyCache(capacity int) *bodyCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	n := shardCountFor(capacity)
	per := (capacity + n - 1) / n
	c := &bodyCache{shards: make([]*bodyShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i] = &bodyShard{
			cap:   per,
			ll:    list.New(),
			items: make(map[[sha256.Size]byte]*list.Element, per),
		}
	}
	return c
}

// shard returns the shard owning digest, selected by its leading bytes
// (the digest is uniformly distributed, so the prefix is an ideal shard
// key).
func (c *bodyCache) shard(digest [sha256.Size]byte) *bodyShard {
	idx := uint32(digest[0]) | uint32(digest[1])<<8
	return c.shards[idx&c.mask]
}

// get returns the identity previously stored for digest, promoting it.
func (c *bodyCache) get(digest [sha256.Size]byte) (requestIdentity, bool) {
	sh := c.shard(digest)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[digest]
	if !ok {
		return requestIdentity{}, false
	}
	sh.ll.MoveToFront(el)
	return el.Value.(*bodyEntry).id, true
}

// put stores the identity for digest, evicting the shard's
// least-recently-used entry at capacity.
func (c *bodyCache) put(digest [sha256.Size]byte, id requestIdentity) {
	sh := c.shard(digest)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[digest]; ok {
		el.Value.(*bodyEntry).id = id
		sh.ll.MoveToFront(el)
		return
	}
	sh.items[digest] = sh.ll.PushFront(&bodyEntry{digest: digest, id: id})
	if sh.ll.Len() > sh.cap {
		oldest := sh.ll.Back()
		sh.ll.Remove(oldest)
		delete(sh.items, oldest.Value.(*bodyEntry).digest)
	}
}

// len reports the aggregate entry count across shards.
func (c *bodyCache) len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}
