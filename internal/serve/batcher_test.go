package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// collectRounds runs a batcher whose dispatch records every round, feeds it
// tasks via feed, stops it, and returns the rounds in dispatch order.
func collectRounds(t *testing.T, maxBatch int, wait time.Duration, feed func(b *batcher)) [][]*solveTask {
	t.Helper()
	var mu sync.Mutex
	var rounds [][]*solveTask
	b := newBatcher(maxBatch, 64, 1, wait, func(_ context.Context, round []*solveTask) {
		mu.Lock()
		rounds = append(rounds, round)
		mu.Unlock()
	})
	feed(b)
	go b.run(context.Background())
	// Let the loop drain the queue, then stop and wait for exit.
	deadline := time.After(5 * time.Second)
	for {
		if b.depth() == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("batcher did not drain its queue")
		case <-time.After(time.Millisecond):
		}
	}
	time.Sleep(5 * wait) // let an open window close
	b.stopOnce()
	select {
	case <-b.done:
	case <-time.After(5 * time.Second):
		t.Fatal("batcher did not exit after stop")
	}
	mu.Lock()
	defer mu.Unlock()
	return rounds
}

func TestBatcherCoalescesCoArrivals(t *testing.T) {
	tasks := make([]*solveTask, 5)
	for i := range tasks {
		tasks[i] = &solveTask{p: newPending(string(rune('a' + i)))}
	}
	rounds := collectRounds(t, 16, 50*time.Millisecond, func(b *batcher) {
		for _, task := range tasks {
			if !b.enqueue(task) {
				t.Fatal("enqueue rejected a task with queue headroom")
			}
		}
	})
	if len(rounds) != 1 {
		t.Fatalf("rounds = %d, want 1 (co-arrivals should coalesce)", len(rounds))
	}
	if len(rounds[0]) != len(tasks) {
		t.Fatalf("round size = %d, want %d", len(rounds[0]), len(tasks))
	}
}

func TestBatcherRespectsMaxBatch(t *testing.T) {
	const n, maxBatch = 10, 4
	rounds := collectRounds(t, maxBatch, 20*time.Millisecond, func(b *batcher) {
		for i := 0; i < n; i++ {
			if !b.enqueue(&solveTask{p: newPending(string(rune('a' + i)))}) {
				t.Fatal("enqueue rejected a task with queue headroom")
			}
		}
	})
	total := 0
	for _, r := range rounds {
		if len(r) > maxBatch {
			t.Fatalf("round of %d users exceeds maxBatch %d", len(r), maxBatch)
		}
		total += len(r)
	}
	if total != n {
		t.Fatalf("dispatched %d tasks, want %d", total, n)
	}
	if len(rounds) < n/maxBatch {
		t.Fatalf("rounds = %d, want ≥ %d", len(rounds), n/maxBatch)
	}
}

func TestBatcherDrainIsLossless(t *testing.T) {
	// Stop the batcher before it ever runs: run() must still dispatch
	// everything queued, in maxBatch-bounded rounds.
	var mu sync.Mutex
	var dispatched int
	b := newBatcher(4, 64, 1, time.Hour /* window must not matter */, func(_ context.Context, round []*solveTask) {
		mu.Lock()
		dispatched += len(round)
		mu.Unlock()
	})
	const n = 11
	for i := 0; i < n; i++ {
		if !b.enqueue(&solveTask{p: newPending(string(rune('a' + i)))}) {
			t.Fatal("enqueue rejected a task with queue headroom")
		}
	}
	b.stopOnce()
	go b.run(context.Background())
	select {
	case <-b.done:
	case <-time.After(5 * time.Second):
		t.Fatal("batcher did not exit after stop")
	}
	mu.Lock()
	defer mu.Unlock()
	if dispatched != n {
		t.Fatalf("drain dispatched %d of %d queued tasks", dispatched, n)
	}
}

func TestBatcherStopOnceIdempotent(t *testing.T) {
	b := newBatcher(1, 1, 1, time.Millisecond, func(context.Context, []*solveTask) {})
	go b.run(context.Background())
	b.stopOnce()
	b.stopOnce() // must not panic on double close
	select {
	case <-b.done:
	case <-time.After(5 * time.Second):
		t.Fatal("batcher did not exit")
	}
}

func TestPendingMultiplicity(t *testing.T) {
	p := newPending("k")
	if got := p.mult.Load(); got != 1 {
		t.Fatalf("fresh pending multiplicity = %d, want 1", got)
	}
	p.mult.Add(1)
	p.mult.Add(1)
	if got := p.mult.Load(); got != 3 {
		t.Fatalf("multiplicity = %d, want 3", got)
	}
}
