package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUCacheBasics(t *testing.T) {
	c := newLRUCache(2)
	if _, _, ok := c.get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	da, db := &Decision{LocalWork: 1}, &Decision{LocalWork: 2}
	c.put("a", da, nil)
	c.put("b", db, nil)
	if got, _, ok := c.get("a"); !ok || got != da {
		t.Fatalf("get(a) = %v, %v", got, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}

	// "a" was just touched, so inserting "c" must evict "b".
	c.put("c", &Decision{}, nil)
	if _, _, ok := c.get("b"); ok {
		t.Fatal("LRU evicted the wrong entry: b survived")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if c.evicted() != 1 {
		t.Fatalf("evictions = %d, want 1", c.evicted())
	}
}

func TestLRUCacheRefresh(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", &Decision{LocalWork: 1}, nil)
	d2 := &Decision{LocalWork: 2}
	c.put("a", d2, nil)
	if c.len() != 1 {
		t.Fatalf("len = %d after double put, want 1", c.len())
	}
	if got, _, _ := c.get("a"); got != d2 {
		t.Fatalf("refresh did not replace the value: %+v", got)
	}
}

func TestLRUCacheDefaultCapacity(t *testing.T) {
	c := newLRUCache(0)
	if c.cap != DefaultCacheSize {
		t.Fatalf("cap = %d, want %d", c.cap, DefaultCacheSize)
	}
}

func TestLRUCacheConcurrent(t *testing.T) {
	c := newLRUCache(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%64)
				c.put(k, &Decision{LocalWork: float64(i)}, nil)
				c.get(k)
			}
		}(w)
	}
	wg.Wait()
	if n := c.len(); n > 32 {
		t.Fatalf("len = %d exceeds capacity 32", n)
	}
}
