package serve

import (
	"errors"
	"strings"
	"testing"
)

// FuzzDecodeSolveRequest asserts the request decoder never panics and
// never accepts a request that violates its limits, no matter how hostile
// the body. Run longer with: go test -fuzz=FuzzDecodeSolveRequest ./internal/serve
func FuzzDecodeSolveRequest(f *testing.F) {
	f.Add(goodBody)
	f.Add("")
	f.Add("null")
	f.Add(`{"graph":null}`)
	f.Add(`{"graph":{"nodes":[{"id":0,"weight":1e308}],"edges":[]}}`)
	f.Add(`{"graph":{"nodes":[{"id":-1,"weight":1}],"edges":[]}}`)
	f.Add(`{"graph":{"nodes":[{"id":0,"weight":1},{"id":0,"weight":2}],"edges":[]}}`)
	f.Add(`{"graph":{"nodes":[{"id":0,"weight":1}],"edges":[{"u":0,"v":99,"weight":1}]}}`)
	f.Add(goodBody + goodBody)
	f.Add(`{"graph":{"nodes":[{"id":0,"weight":1}],"edges":[]},"bandwidth":-0.0001}`)
	f.Add(strings.Repeat("[", 1000))

	limits := DecodeLimits{MaxNodes: 64, MaxEdges: 128}
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeSolveRequest(strings.NewReader(body), limits)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("decode error outside the ErrBadRequest family: %v", err)
			}
			if req != nil {
				t.Fatal("non-nil request alongside an error")
			}
			return
		}
		if req.Graph == nil || req.Graph.NumNodes() == 0 {
			t.Fatal("accepted request without a graph")
		}
		if req.Graph.NumNodes() > limits.MaxNodes || req.Graph.NumEdges() > limits.MaxEdges {
			t.Fatalf("accepted over-limit graph: %d nodes, %d edges",
				req.Graph.NumNodes(), req.Graph.NumEdges())
		}
		if req.FixedLocalWork < 0 || req.DeviceCompute < 0 || req.Bandwidth < 0 || req.PowerTransmit < 0 {
			t.Fatalf("accepted negative override: %+v", req)
		}
		if p := req.Params; p != nil &&
			(p.ServerCapacity < 0 || p.DeviceCompute < 0 || p.PowerCompute < 0 ||
				p.PowerTransmit < 0 || p.Bandwidth < 0) {
			t.Fatalf("accepted negative params override: %+v", p)
		}
		// An accepted request must be keyable — the serving path depends on it.
		if _, _, err := requestKey(req, defaultTestParams()); err != nil {
			t.Fatalf("accepted request not keyable: %v", err)
		}
	})
}
