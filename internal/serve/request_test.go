package serve

import (
	"errors"
	"strings"
	"testing"

	"copmecs/internal/mec"
)

const goodBody = `{"graph":{"nodes":[{"id":0,"weight":50},{"id":1,"weight":120}],"edges":[{"u":0,"v":1,"weight":40}]}}`

func TestDecodeSolveRequestOK(t *testing.T) {
	req, err := DecodeSolveRequest(strings.NewReader(goodBody), DecodeLimits{})
	if err != nil {
		t.Fatalf("DecodeSolveRequest: %v", err)
	}
	if req.Graph == nil || req.Graph.NumNodes() != 2 || req.Graph.NumEdges() != 1 {
		t.Fatalf("decoded graph = %v", req.Graph)
	}
}

func TestDecodeSolveRequestOverrides(t *testing.T) {
	body := `{"graph":{"nodes":[{"id":0,"weight":5}],"edges":[]},` +
		`"params":{"server_capacity":9000},"fixed_local_work":10,"bandwidth":300}`
	req, err := DecodeSolveRequest(strings.NewReader(body), DecodeLimits{})
	if err != nil {
		t.Fatalf("DecodeSolveRequest: %v", err)
	}
	if req.Params == nil || req.Params.ServerCapacity != 9000 {
		t.Fatalf("params = %+v", req.Params)
	}
	if req.FixedLocalWork != 10 || req.Bandwidth != 300 {
		t.Fatalf("overrides = %+v", req)
	}
	merged := req.Params.merge(mec.Defaults())
	if merged.ServerCapacity != 9000 {
		t.Fatalf("merged ServerCapacity = %v", merged.ServerCapacity)
	}
	if def := mec.Defaults(); merged.DeviceCompute != def.DeviceCompute {
		t.Fatalf("merge clobbered DeviceCompute: %v", merged.DeviceCompute)
	}
}

func TestDecodeSolveRequestRejects(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		limits  DecodeLimits
		wantErr error
	}{
		{"empty", "", DecodeLimits{}, ErrBadRequest},
		{"malformed", `{"graph":`, DecodeLimits{}, ErrBadRequest},
		{"not json", "hello", DecodeLimits{}, ErrBadRequest},
		{"unknown field", `{"graph":{"nodes":[{"id":0,"weight":1}],"edges":[]},"bogus":1}`, DecodeLimits{}, ErrBadRequest},
		{"trailing data", goodBody + `{"x":1}`, DecodeLimits{}, ErrBadRequest},
		{"no graph", `{}`, DecodeLimits{}, ErrNoGraph},
		{"null graph", `{"graph":null}`, DecodeLimits{}, ErrNoGraph},
		{"empty graph", `{"graph":{"nodes":[],"edges":[]}}`, DecodeLimits{}, ErrNoGraph},
		{"too many nodes", goodBody, DecodeLimits{MaxNodes: 1}, ErrTooLarge},
		{"too many edges", goodBody, DecodeLimits{MaxNodes: 2, MaxEdges: 1}, nil}, // exactly at limit: OK
		{"negative override", `{"graph":{"nodes":[{"id":0,"weight":1}],"edges":[]},"bandwidth":-1}`, DecodeLimits{}, ErrBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := DecodeSolveRequest(strings.NewReader(tc.body), tc.limits)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("DecodeSolveRequest: %v", err)
				}
				return
			}
			if req != nil {
				t.Fatalf("rejected decode returned request %+v", req)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			// The whole family maps to 400.
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("err = %v does not wrap ErrBadRequest", err)
			}
		})
	}
}

func TestDecodeEdgeLimit(t *testing.T) {
	body := `{"graph":{"nodes":[{"id":0,"weight":1},{"id":1,"weight":1},{"id":2,"weight":1}],` +
		`"edges":[{"u":0,"v":1,"weight":1},{"u":1,"v":2,"weight":1}]}}`
	_, err := DecodeSolveRequest(strings.NewReader(body), DecodeLimits{MaxEdges: 1})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestRequestKeyStability(t *testing.T) {
	params := mec.Defaults()
	reqA, err := DecodeSolveRequest(strings.NewReader(goodBody), DecodeLimits{})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	reqB, err := DecodeSolveRequest(strings.NewReader(goodBody), DecodeLimits{})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	ka, fa, err := requestKey(reqA, params)
	if err != nil {
		t.Fatalf("requestKey: %v", err)
	}
	kb, fb, err := requestKey(reqB, params)
	if err != nil {
		t.Fatalf("requestKey: %v", err)
	}
	if ka != kb {
		t.Fatalf("equal requests keyed differently: %s vs %s", ka, kb)
	}
	if fa != fb {
		t.Fatalf("equal graphs fingerprinted differently: %s vs %s", fa, fb)
	}
	// The graph fingerprint must match graph.Fingerprint — it is the
	// graph-intern key and the two must agree.
	if want, err := reqA.Graph.Fingerprint(); err != nil || fa != want {
		t.Fatalf("fingerprint = %s (err %v), want %s", fa, err, want)
	}

	// Any input that changes the solve must change the key — but not the
	// graph fingerprint, which identifies the graph alone.
	p2 := params
	p2.ServerCapacity *= 2
	if k2, f2, _ := requestKey(reqA, p2); k2 == ka || f2 != fa {
		t.Fatalf("params change: key %s fp %s, want new key, same fp", k2, f2)
	}
	reqB.FixedLocalWork = 5
	if k3, f3, _ := requestKey(reqB, params); k3 == ka || f3 != fa {
		t.Fatalf("override change: key %s fp %s, want new key, same fp", k3, f3)
	}
}

func TestParamsDigestPartitions(t *testing.T) {
	a, b := mec.Defaults(), mec.Defaults()
	if paramsDigest(a) != paramsDigest(b) {
		t.Fatal("equal params digested differently")
	}
	b.Bandwidth++
	if paramsDigest(a) == paramsDigest(b) {
		t.Fatal("different params share a digest")
	}
}
