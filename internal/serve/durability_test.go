package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// fakeJournal implements Journal in memory, recording every append and
// applied call so tests can assert the write-ahead accounting balances.
type fakeJournal struct {
	mu        sync.Mutex
	appends   [][]byte
	applied   map[uint64]int
	seg       uint64
	appendErr error
}

func newFakeJournal() *fakeJournal {
	return &fakeJournal{applied: make(map[uint64]int), seg: 1}
}

func (j *fakeJournal) Append(payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.appendErr != nil {
		return 0, j.appendErr
	}
	j.appends = append(j.appends, append([]byte{}, payload...))
	return j.seg, nil
}

func (j *fakeJournal) Applied(seg uint64) {
	j.mu.Lock()
	j.applied[seg]++
	j.mu.Unlock()
}

// counts reports (appends, total applied).
func (j *fakeJournal) counts() (int, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, c := range j.applied {
		n += c
	}
	return len(j.appends), n
}

// postRecorded drives handleSolve in-process with a real recorder so the
// response body can be decoded.
func postRecorded(s *Server, body []byte, ctx context.Context) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
	req.Body = io.NopCloser(bytes.NewReader(body))
	s.handleSolve(rec, req.WithContext(ctx))
	return rec
}

func TestJournalAppendAppliedBalance(t *testing.T) {
	jr := newFakeJournal()
	s := newTestServer(t, Config{Journal: jr})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	w := &nopResponseWriter{}
	const distinct = 5
	for i := 0; i < distinct; i++ {
		if st := postDirect(s, solveBody(t, testGraph(t, i)), w, ctx); st != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, st)
		}
	}
	// Repeat bodies are cache hits: the warm path never journals.
	for i := 0; i < distinct; i++ {
		if st := postDirect(s, solveBody(t, testGraph(t, i)), w, ctx); st != http.StatusOK {
			t.Fatalf("repeat %d: status %d", i, st)
		}
	}
	appends, applied := jr.counts()
	if appends != distinct {
		t.Fatalf("appends = %d, want %d (one per distinct accepted leader)", appends, distinct)
	}
	// Every response was delivered, so every journaled record was released
	// (finish runs Applied after the cache fill, before waking waiters).
	if applied != appends {
		t.Fatalf("applied = %d, want %d", applied, appends)
	}
	// Each journaled payload round-trips to a key the cache now holds.
	jr.mu.Lock()
	payloads := append([][]byte{}, jr.appends...)
	jr.mu.Unlock()
	for i, payload := range payloads {
		req, params, err := decodeAccepted(payload, DecodeLimits{})
		if err != nil {
			t.Fatalf("decode journal record %d: %v", i, err)
		}
		key, _, err := requestKey(req, params)
		if err != nil {
			t.Fatalf("requestKey of record %d: %v", i, err)
		}
		if _, _, ok := s.cache.get(key); !ok {
			t.Fatalf("record %d's key not in cache after solve", i)
		}
	}
}

func TestAdmitShedReleasesJournalRecord(t *testing.T) {
	// One lane with the minimum ring depth (2) and no Start: the first
	// two leaders fill the slots, the third is shed and must release its
	// journal token.
	jr := newFakeJournal()
	s := newTestServer(t, Config{Journal: jr, QueueDepth: 1, BatchLanes: 1})
	params := defaultTestParams()

	admitOne := func(i int) error {
		req := &SolveRequest{Graph: testGraph(t, i)}
		key, fp, err := requestKey(req, params)
		if err != nil {
			t.Fatalf("requestKey: %v", err)
		}
		jrec, err := encodeAccepted(req, params)
		if err != nil {
			t.Fatalf("encodeAccepted: %v", err)
		}
		_, _, aerr := s.admit(key, fp, req, params, jrec)
		return aerr
	}
	for i := 0; i < 2; i++ {
		if err := admitOne(i); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if err := admitOne(2); !errors.Is(err, ErrShed) {
		t.Fatalf("third admit = %v, want ErrShed", err)
	}
	appends, applied := jr.counts()
	if appends != 3 {
		t.Fatalf("appends = %d, want 3 (every leader journaled write-ahead)", appends)
	}
	if applied != 1 {
		t.Fatalf("applied = %d, want 1 (the shed request's record released immediately)", applied)
	}
	// Release the queued leaders so the accepted WaitGroup does not leak
	// (no dispatcher is running in this test).
	cursor := new(int)
	for i := 0; i < 2; i++ {
		task, ok := s.b.tryPop(cursor)
		if !ok {
			t.Fatalf("queued task %d missing", i)
		}
		s.finish(task, nil, errors.New("test teardown"))
	}
	if _, applied := jr.counts(); applied != 3 {
		t.Fatalf("applied after finish = %d, want 3", applied)
	}
}

func TestJournalAppendErrorDegradesToServing(t *testing.T) {
	jr := newFakeJournal()
	jr.appendErr = errors.New("disk on fire")
	s := newTestServer(t, Config{Journal: jr})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	w := &nopResponseWriter{}
	if st := postDirect(s, solveBody(t, testGraph(t, 0)), w, ctx); st != http.StatusOK {
		t.Fatalf("solve with failing journal: status %d, want 200", st)
	}
	if got := s.st.journalErrors.Load(); got != 1 {
		t.Fatalf("journalErrors = %d, want 1", got)
	}
	st := s.Stats()
	if st.Durability == nil || st.Durability.AppendErrors != 1 {
		t.Fatalf("stats durability = %+v, want AppendErrors 1", st.Durability)
	}
}

func TestAcceptedRecordRoundTripPreservesKey(t *testing.T) {
	params := defaultTestParams()
	params.Bandwidth *= 2
	req := &SolveRequest{
		Graph:          testGraph(t, 3),
		FixedLocalWork: 12.5,
		DeviceCompute:  3.25,
		Bandwidth:      9,
		PowerTransmit:  0.75,
	}
	wantKey, wantFp, err := requestKey(req, params)
	if err != nil {
		t.Fatalf("requestKey: %v", err)
	}
	payload, err := encodeAccepted(req, params)
	if err != nil {
		t.Fatalf("encodeAccepted: %v", err)
	}
	got, gotParams, err := decodeAccepted(payload, DecodeLimits{})
	if err != nil {
		t.Fatalf("decodeAccepted: %v", err)
	}
	if gotParams != params {
		t.Fatalf("params = %+v, want %+v", gotParams, params)
	}
	gotKey, gotFp, err := requestKey(got, gotParams)
	if err != nil {
		t.Fatalf("requestKey of decoded: %v", err)
	}
	if gotKey != wantKey || gotFp != wantFp {
		t.Fatalf("replayed identity (%s, %s) != live identity (%s, %s)", gotKey, gotFp, wantKey, wantFp)
	}
}

func TestDecodeAcceptedRejectsHostileRecords(t *testing.T) {
	params := defaultTestParams()
	good, err := encodeAccepted(&SolveRequest{Graph: testGraph(t, 0)}, params)
	if err != nil {
		t.Fatalf("encodeAccepted: %v", err)
	}
	cases := map[string]struct {
		payload []byte
		limits  DecodeLimits
	}{
		"empty":         {payload: nil},
		"wrong type":    {payload: []byte{recDecision, 0, 0, 0}},
		"truncated":     {payload: good[:20]},
		"graph garbage": {payload: append(append([]byte{}, good[:1+9*8]...), []byte("not a graph")...)},
		"over limits":   {payload: good, limits: DecodeLimits{MaxNodes: 1}},
	}
	for name, tc := range cases {
		if _, _, err := decodeAccepted(tc.payload, tc.limits); err == nil {
			t.Errorf("%s: decodeAccepted accepted it", name)
		}
	}
	// Non-finite floats are rejected before params validation.
	nan := append([]byte{}, good...)
	for i := 1; i <= 8; i++ {
		nan[i] = 0xff
	}
	if _, _, err := decodeAccepted(nan, DecodeLimits{}); err == nil {
		t.Error("NaN params accepted")
	}
}

func TestSnapshotRestoreWarmsCaches(t *testing.T) {
	// Serve on A, snapshot, restore into a fresh B: the same bodies must
	// be cache hits on B without a single solve or journal append.
	a := newTestServer(t, Config{Journal: newFakeJournal()})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a.Start(ctx)
	w := &nopResponseWriter{}
	const n = 3
	for i := 0; i < n; i++ {
		if st := postDirect(a, solveBody(t, testGraph(t, i)), w, ctx); st != http.StatusOK {
			t.Fatalf("solve %d on A: status %d", i, st)
		}
	}
	var records [][]byte
	if err := a.WriteSnapshotRecords(func(p []byte) error {
		records = append(records, append([]byte{}, p...))
		return nil
	}); err != nil {
		t.Fatalf("WriteSnapshotRecords: %v", err)
	}

	jrB := newFakeJournal()
	b := newTestServer(t, Config{Journal: jrB})
	rs := b.Recover(ctx, records, nil)
	if rs.SnapshotDecisions != n || rs.SnapshotGraphs != n {
		t.Fatalf("recovery = %+v, want %d decisions and %d graphs", rs, n, n)
	}
	if rs.DecodeErrors != 0 {
		t.Fatalf("DecodeErrors = %d on a clean snapshot", rs.DecodeErrors)
	}
	b.Start(ctx)
	for i := 0; i < n; i++ {
		rec := postRecorded(b, solveBody(t, testGraph(t, i)), ctx)
		if rec.Code != http.StatusOK {
			t.Fatalf("restored solve %d: status %d", i, rec.Code)
		}
		var resp SolveResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode response: %v", err)
		}
		if !resp.Cached {
			t.Fatalf("request %d on restored server was not a cache hit", i)
		}
	}
	// The counter snapshot carried A's traffic history across the restore.
	if got := b.Stats().Requests; got < n {
		t.Fatalf("restored Requests = %d, want >= %d (counter snapshot restored)", got, n)
	}
	// B never journaled: every request was warm.
	if appends, _ := jrB.counts(); appends != 0 {
		t.Fatalf("restored server journaled %d records on warm hits", appends)
	}
}

func TestJournalReplaySolvesAndDedups(t *testing.T) {
	params := defaultTestParams()
	var journal [][]byte
	for i := 0; i < 3; i++ {
		rec, err := encodeAccepted(&SolveRequest{Graph: testGraph(t, i)}, params)
		if err != nil {
			t.Fatalf("encodeAccepted: %v", err)
		}
		journal = append(journal, rec)
	}
	// A duplicate of record 0 (replay is idempotent) and one corrupt record.
	journal = append(journal, journal[0], []byte("garbage record"))

	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rs := s.Recover(ctx, nil, journal)
	if rs.JournalRecords != 5 {
		t.Fatalf("JournalRecords = %d, want 5", rs.JournalRecords)
	}
	if rs.ReplaySolved != 3 {
		t.Fatalf("ReplaySolved = %d, want 3", rs.ReplaySolved)
	}
	if rs.ReplayWarm != 1 {
		t.Fatalf("ReplayWarm = %d, want 1 (the duplicate)", rs.ReplayWarm)
	}
	if rs.DecodeErrors != 1 {
		t.Fatalf("DecodeErrors = %d, want 1", rs.DecodeErrors)
	}
	if rs.ReplayErrors != 0 {
		t.Fatalf("ReplayErrors = %d, want 0", rs.ReplayErrors)
	}
	// Replayed keys answer warm.
	s.Start(ctx)
	rec := postRecorded(s, solveBody(t, testGraph(t, 1)), ctx)
	if rec.Code != http.StatusOK {
		t.Fatalf("replayed key: status %d", rec.Code)
	}
	var resp SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if !resp.Cached {
		t.Fatal("replayed key was not served from cache")
	}
	// Without Journal/DurabilityStats configured, stats carry no
	// durability section even after a recovery ran.
	if st := s.Stats(); st.Durability != nil {
		t.Fatalf("durability section present on in-memory server: %+v", st.Durability)
	}
	if got := s.recovery.Load(); got == nil || got.ReplaySolved != 3 {
		t.Fatalf("recovery pointer = %+v", got)
	}
}

func TestCountersRecordRoundTrip(t *testing.T) {
	var c counters
	c.requests.Add(7)
	c.solved.Add(5)
	c.cacheHits.Add(3)
	c.cacheMisses.Add(2)
	c.bodyHits.Add(1)
	c.deduped.Add(4)
	rec, err := encodeCountersRecord(&c)
	if err != nil {
		t.Fatalf("encodeCountersRecord: %v", err)
	}
	var fresh counters
	if err := restoreCountersRecord(rec, &fresh); err != nil {
		t.Fatalf("restoreCountersRecord: %v", err)
	}
	if fresh.requests.Load() != 7 || fresh.solved.Load() != 5 || fresh.cacheHits.Load() != 3 ||
		fresh.cacheMisses.Load() != 2 || fresh.bodyHits.Load() != 1 || fresh.deduped.Load() != 4 {
		t.Fatal("restored counters do not match")
	}
	if err := restoreCountersRecord([]byte{recCounters, '{'}, &fresh); err == nil {
		t.Fatal("truncated counters record accepted")
	}
}

func TestDurabilityStatsSectionShape(t *testing.T) {
	s := newTestServer(t, Config{
		Journal: newFakeJournal(),
		DurabilityStats: func() DurabilityStats {
			return DurabilityStats{
				JournalSegments:   2,
				JournalRecords:    10,
				JournalBytes:      640,
				LastFsyncAgeMs:    5,
				SnapshotSeq:       3,
				SnapshotsWritten:  1,
				LastSnapshotAgeMs: 900,
			}
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Recover(ctx, nil, nil)

	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	dur, ok := doc["durability"].(map[string]any)
	if !ok {
		t.Fatalf("durability section missing: %v", doc["durability"])
	}
	for _, key := range []string{
		"journal_segments", "journal_records", "journal_bytes", "append_errors",
		"write_errors", "fsync_errors", "last_fsync_age_ms",
		"snapshot_seq", "snapshots_written", "snapshot_errors", "last_snapshot_age_ms",
		"replay",
	} {
		if _, ok := dur[key]; !ok {
			t.Fatalf("durability field %q missing", key)
		}
	}
	if dur["journal_records"].(float64) != 10 || dur["snapshot_seq"].(float64) != 3 {
		t.Fatalf("durability passthrough wrong: %v", dur)
	}
	replay, ok := dur["replay"].(map[string]any)
	if !ok {
		t.Fatalf("replay section missing after Recover: %v", dur["replay"])
	}
	for _, key := range []string{
		"snapshot_graphs", "snapshot_decisions", "journal_records",
		"replay_warm", "replay_solved", "replay_errors", "decode_errors",
	} {
		if _, ok := replay[key]; !ok {
			t.Fatalf("replay field %q missing", key)
		}
	}
}
