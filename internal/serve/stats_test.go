package serve

import (
	"testing"
	"time"
)

func TestHistogramBucketArraySize(t *testing.T) {
	// numLatencyBuckets must track latencyBoundsMs (+1 for +Inf); the
	// array-sized constant cannot reference the slice, so assert here.
	if numLatencyBuckets != len(latencyBoundsMs)+1 {
		t.Fatalf("numLatencyBuckets = %d, want len(latencyBoundsMs)+1 = %d",
			numLatencyBuckets, len(latencyBoundsMs)+1)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h histogram
	h.observe(500 * time.Microsecond) // ≤ 1ms bucket
	h.observe(3 * time.Millisecond)   // ≤ 5ms bucket
	h.observe(10 * time.Second)       // +Inf bucket

	s := h.snapshot()
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	if len(s.Buckets) != numLatencyBuckets {
		t.Fatalf("len(Buckets) = %d, want %d", len(s.Buckets), numLatencyBuckets)
	}
	// Cumulative: the 1ms bucket holds 1, the 5ms bucket holds 2, the final
	// +Inf bucket (LE sentinel 0) holds everything.
	if s.Buckets[0].LE != 1 || s.Buckets[0].Count != 1 {
		t.Fatalf("bucket[0] = %+v", s.Buckets[0])
	}
	if s.Buckets[2].LE != 5 || s.Buckets[2].Count != 2 {
		t.Fatalf("bucket[2] = %+v", s.Buckets[2])
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.LE != 0 || last.Count != 3 {
		t.Fatalf("+Inf bucket = %+v", last)
	}
	// Mean of 0.5ms + 3ms + 10000ms ≈ 3334.5ms.
	if s.MeanMs < 3000 || s.MeanMs > 3500 {
		t.Fatalf("MeanMs = %v", s.MeanMs)
	}
	// Cumulative counts never decrease.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Fatalf("bucket %d count %d < bucket %d count %d",
				i, s.Buckets[i].Count, i-1, s.Buckets[i-1].Count)
		}
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	var h histogram
	s := h.snapshot()
	if s.Count != 0 || s.MeanMs != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestObserveBatchMax(t *testing.T) {
	var c counters
	c.observeBatch(3)
	c.observeBatch(7)
	c.observeBatch(5)
	if got := c.batches.Load(); got != 3 {
		t.Fatalf("batches = %d, want 3", got)
	}
	if got := c.batchedUsers.Load(); got != 15 {
		t.Fatalf("batchedUsers = %d, want 15", got)
	}
	if got := c.maxBatch.Load(); got != 7 {
		t.Fatalf("maxBatch = %d, want 7", got)
	}
}
