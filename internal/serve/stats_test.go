package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHistogramBucketArraySize(t *testing.T) {
	// numLatencyBuckets must track latencyBoundsMs (+1 for +Inf); the
	// array-sized constant cannot reference the slice, so assert here.
	if numLatencyBuckets != len(latencyBoundsMs)+1 {
		t.Fatalf("numLatencyBuckets = %d, want len(latencyBoundsMs)+1 = %d",
			numLatencyBuckets, len(latencyBoundsMs)+1)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h histogram
	h.observe(500 * time.Microsecond) // ≤ 1ms bucket
	h.observe(3 * time.Millisecond)   // ≤ 5ms bucket
	h.observe(10 * time.Second)       // +Inf bucket

	s := h.snapshot()
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	if len(s.Buckets) != numLatencyBuckets {
		t.Fatalf("len(Buckets) = %d, want %d", len(s.Buckets), numLatencyBuckets)
	}
	// Cumulative: the 1ms bucket holds 1, the 5ms bucket holds 2, the final
	// +Inf bucket (LE sentinel 0) holds everything.
	if s.Buckets[0].LE != 1 || s.Buckets[0].Count != 1 {
		t.Fatalf("bucket[0] = %+v", s.Buckets[0])
	}
	if s.Buckets[2].LE != 5 || s.Buckets[2].Count != 2 {
		t.Fatalf("bucket[2] = %+v", s.Buckets[2])
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.LE != 0 || last.Count != 3 {
		t.Fatalf("+Inf bucket = %+v", last)
	}
	// Mean of 0.5ms + 3ms + 10000ms ≈ 3334.5ms.
	if s.MeanMs < 3000 || s.MeanMs > 3500 {
		t.Fatalf("MeanMs = %v", s.MeanMs)
	}
	// Cumulative counts never decrease.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Fatalf("bucket %d count %d < bucket %d count %d",
				i, s.Buckets[i].Count, i-1, s.Buckets[i-1].Count)
		}
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	var h histogram
	s := h.snapshot()
	if s.Count != 0 || s.MeanMs != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestObserveBatchMax(t *testing.T) {
	var c counters
	c.observeBatch(3)
	c.observeBatch(7)
	c.observeBatch(5)
	if got := c.batches.Load(); got != 3 {
		t.Fatalf("batches = %d, want 3", got)
	}
	if got := c.batchedUsers.Load(); got != 15 {
		t.Fatalf("batchedUsers = %d, want 15", got)
	}
	if got := c.maxBatch.Load(); got != 7 {
		t.Fatalf("maxBatch = %d, want 7", got)
	}
}

func TestStatsJSONShapeKeepsFlatFieldsAndAddsShardSections(t *testing.T) {
	// The /v1/stats document must keep every pre-existing flat field (so
	// dashboards and the CI serve job's jq assertions keep working) while
	// adding the per-shard occupancy and per-lane batcher sections.
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	body := solveBody(t, testGraph(t, 0))
	w := &nopResponseWriter{}
	for i := 0; i < 2; i++ { // solve, then a body-digest cache hit
		if st := postDirect(s, body, w, ctx); st != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, st)
		}
	}

	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	for _, key := range []string{
		"requests", "solved", "bad_requests", "shed", "rate_limited",
		"drain_rejects", "deduped", "solve_errors", "timeouts", "in_flight",
		"draining", "cache", "graph_cache", "batch", "incremental", "latency_ms",
	} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("flat field %q missing from /v1/stats", key)
		}
	}
	cache := doc["cache"].(map[string]any)
	for _, key := range []string{"hits", "misses", "body_hits", "size", "capacity", "evictions", "shards"} {
		if _, ok := cache[key]; !ok {
			t.Fatalf("cache field %q missing", key)
		}
	}
	if shards := cache["shards"].([]any); len(shards) == 0 {
		t.Fatal("cache.shards is empty")
	} else if sh := shards[0].(map[string]any); sh["capacity"].(float64) <= 0 {
		t.Fatalf("cache shard capacity = %v", sh["capacity"])
	}
	if cache["body_hits"].(float64) != 1 {
		t.Fatalf("body_hits = %v, want 1 (second request was byte-identical)", cache["body_hits"])
	}
	gc := doc["graph_cache"].(map[string]any)
	if _, ok := gc["shards"]; !ok {
		t.Fatal("graph_cache.shards missing")
	}
	batch := doc["batch"].(map[string]any)
	for _, key := range []string{"rounds", "users", "max_users", "fused_rounds", "fused_graphs", "queue_depth", "lanes"} {
		if _, ok := batch[key]; !ok {
			t.Fatalf("batch field %q missing", key)
		}
	}
	lanes := batch["lanes"].([]any)
	if len(lanes) == 0 {
		t.Fatal("batch.lanes is empty")
	}
	lane := lanes[0].(map[string]any)
	for _, key := range []string{"depth", "capacity", "enqueued", "rejected"} {
		if _, ok := lane[key]; !ok {
			t.Fatalf("lane field %q missing", key)
		}
	}
	var enq float64
	for _, l := range lanes {
		enq += l.(map[string]any)["enqueued"].(float64)
	}
	if enq != 1 {
		t.Fatalf("total lane enqueued = %v, want 1 (one leader task)", enq)
	}
	// The in-memory default carries no durability section: the key is
	// omitted entirely, not rendered as null.
	if raw, ok := doc["durability"]; ok {
		t.Fatalf("durability key present on in-memory server: %v", raw)
	}
}
