package serve

import "sync/atomic"

// taskRing is a bounded multi-producer single-consumer queue of solve
// tasks, used as one batcher lane. It is the classic bounded-array design
// with a per-slot sequence number (Vyukov): producers claim a slot by CAS
// on the enqueue cursor and publish the task with a release store of the
// slot's sequence; the consumer observes that store with an acquire load
// before reading the task, so every push happens-before the pop that
// returns it (Go's sync/atomic gives these operations
// sequentially-consistent ordering, which subsumes the release/acquire
// pairs this queue needs). A full lane rejects immediately — admission
// control turns that into a 429 — so producers never spin against a slow
// consumer.
type taskRing struct {
	mask  uint64
	slots []ringSlot
	_     [32]byte // fill the header line: cursors stay off the slots' line
	enq   atomic.Uint64
	_     [56]byte // one cursor per cache line: producers and the consumer
	deq   atomic.Uint64
	_     [56]byte
}

// ringSlot is one ring cell. seq encodes the slot's state relative to the
// cursors: seq == pos means free for the producer claiming position pos,
// seq == pos+1 means the task is published for the consumer at pos.
// Padding keeps neighbouring slots from sharing a cache line, so two
// producers claiming adjacent positions do not false-share.
type ringSlot struct {
	seq  atomic.Uint64
	task *solveTask
	_    [48]byte
}

// newTaskRing returns a ring holding at least capacity tasks, rounded up
// to a power of two. The minimum is 2: with a single slot, a producer one
// full lap ahead would see seq == pos (the published-but-unconsumed state
// is indistinguishable from free) and overwrite the queued task.
func newTaskRing(capacity int) *taskRing {
	n := 2
	for n < capacity {
		n *= 2
	}
	r := &taskRing{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// cap reports the ring's capacity.
func (r *taskRing) cap() int { return len(r.slots) }

// push publishes t, returning false when the ring is full. Safe for
// concurrent producers.
func (r *taskRing) push(t *solveTask) bool {
	pos := r.enq.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.task = t
				slot.seq.Store(pos + 1) // publish: pairs with pop's acquire
				return true
			}
			pos = r.enq.Load()
		case d < 0:
			// The slot one lap behind is still occupied: full.
			return false
		default:
			// Another producer claimed pos; chase the cursor.
			pos = r.enq.Load()
		}
	}
}

// pop removes the oldest task, returning false when the ring is empty.
// Single consumer only (the batcher's dispatch goroutine).
func (r *taskRing) pop() (*solveTask, bool) {
	pos := r.deq.Load()
	slot := &r.slots[pos&r.mask]
	if int64(slot.seq.Load())-int64(pos+1) < 0 {
		return nil, false // producer has not published pos yet
	}
	t := slot.task
	slot.task = nil
	slot.seq.Store(pos + r.mask + 1) // free the slot for the next lap
	r.deq.Store(pos + 1)
	return t, true
}

// len reports the number of published-but-unpopped tasks. It races with
// concurrent pushes by design — the value is a monitoring gauge, not a
// synchronization primitive.
func (r *taskRing) len() int {
	d := int64(r.enq.Load()) - int64(r.deq.Load())
	if d < 0 {
		d = 0
	}
	if d > int64(len(r.slots)) {
		d = int64(len(r.slots))
	}
	return int(d)
}
