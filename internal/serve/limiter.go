package serve

import (
	"sync/atomic"
	"time"
)

// rateLimiter is a lock-free GCRA (generic cell rate algorithm) admission
// limiter: the serving-tier equivalent of a token bucket, expressed as a
// single atomic "theoretical arrival time". A request is admitted when the
// limiter's virtual schedule has not run more than one burst window ahead
// of real time; each admission advances the schedule by one emission
// interval. One CAS per decision, no mutex, no background refill
// goroutine — the hot path stays contention-free at GOMAXPROCS-scale
// concurrency like the rest of the request path.
//
// The limiter sits at the very front of /v1/solve (before the body is even
// read), so a rate-capped daemon sheds excess offered load at the cheapest
// possible point. Capping per-backend throughput is what makes a fleet's
// capacity additive: N daemons capped at Q QPS serve ≈ N·Q behind the
// router, which scripts/bench_fleet.sh turns into a committed scaling
// benchmark.
type rateLimiter struct {
	// base anchors the monotonic clock; times below are ns since base.
	base time.Time
	// interval is the emission interval in ns (1e9 / maxQPS).
	interval int64
	// window is the burst allowance in ns (burst tokens × interval): how
	// far the virtual schedule may run ahead of now before shedding.
	window int64
	// tat is the theoretical arrival time of the next admission, in ns
	// since base.
	tat atomic.Int64
}

// newRateLimiter returns a limiter admitting maxQPS requests per second
// with the given burst (≤ 0 picks max(1, maxQPS/2)). maxQPS must be
// positive; callers gate on that.
func newRateLimiter(maxQPS float64, burst int) *rateLimiter {
	if burst <= 0 {
		burst = int(maxQPS / 2)
		if burst < 1 {
			burst = 1
		}
	}
	interval := int64(float64(time.Second) / maxQPS)
	if interval < 1 {
		interval = 1
	}
	return &rateLimiter{
		base:     time.Now(),
		interval: interval,
		window:   int64(burst) * interval,
	}
}

// allow reports whether one request may be admitted now. A nil limiter
// admits everything (the unlimited default).
func (l *rateLimiter) allow() bool {
	if l == nil {
		return true
	}
	now := int64(time.Since(l.base))
	for {
		tat := l.tat.Load()
		if tat-now > l.window {
			return false
		}
		next := tat
		if now > next {
			next = now
		}
		if l.tat.CompareAndSwap(tat, next+l.interval) {
			return true
		}
	}
}
