package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"copmecs/internal/core"
	"copmecs/internal/graph"
	"copmecs/internal/mec"
)

// Durability integration: when Config.Journal is set, every accepted
// leader request is journaled before it is enqueued (write-ahead), and
// the journal token is released in finish only after the solved decision
// is published to the cache — so any record a snapshot truncation drops
// is provably covered by that snapshot, and any record still in the
// journal at a crash is replayed on the next boot. The warm path (cache
// hits, followers) never touches the journal, keeping the hot-path cost
// of durability to one append per distinct cold request.
//
// The record payloads reuse the canonical binary graph codec, so a
// journal record carries exactly the identity the cache keys on:
// replaying it reproduces the same requestKey the live request had.

// Journal is the write-ahead log the server appends accepted requests
// to. durable.Store satisfies it structurally; serve stays free of a
// durable dependency so in-memory serving links no storage code.
type Journal interface {
	// Append journals one encoded accepted request, returning a token to
	// pass to Applied once the decision is published in memory.
	Append(payload []byte) (uint64, error)
	// Applied releases one appended record for snapshot truncation.
	Applied(token uint64)
}

// Durability record types (first payload byte).
const (
	recAccepted uint8 = 1 // journal: one accepted request
	recDecision uint8 = 2 // snapshot: one cached decision
	recGraph    uint8 = 3 // snapshot: one interned graph
	recCounters uint8 = 4 // snapshot: monotonic traffic counters
	recMutate   uint8 = 5 // journal: one accepted graph mutation
)

// RecoveryStats summarises one boot-time Recover pass, surfaced under
// /v1/stats durability.replay.
type RecoveryStats struct {
	// SnapshotGraphs counts graphs re-interned from the snapshot.
	SnapshotGraphs int `json:"snapshot_graphs"`
	// SnapshotDecisions counts decisions restored from the snapshot.
	SnapshotDecisions int `json:"snapshot_decisions"`
	// JournalRecords counts journal records presented for replay.
	JournalRecords int `json:"journal_records"`
	// ReplayWarm counts journal records whose key the restored cache (or
	// an earlier replayed record) already covered.
	ReplayWarm int `json:"replay_warm"`
	// ReplaySolved counts journal records re-solved into the cache.
	ReplaySolved int `json:"replay_solved"`
	// ReplayMutates counts mutate records whose delta was re-applied to
	// reconstruct the mutated graph during replay (warm or solved).
	ReplayMutates int `json:"replay_mutates"`
	// ReplayErrors counts replay rounds that failed to solve.
	ReplayErrors int `json:"replay_errors"`
	// DecodeErrors counts records that failed to decode (CRC-valid but
	// semantically unusable — version skew or fault injection).
	DecodeErrors int `json:"decode_errors"`
}

// DurabilityStats is the durability section of a Stats snapshot. The
// journal and snapshot fields come from the daemon's durable store via
// Config.DurabilityStats; AppendErrors and Replay are the server's own.
type DurabilityStats struct {
	// JournalSegments is the number of on-disk journal segments.
	JournalSegments int `json:"journal_segments"`
	// JournalRecords counts records journaled since boot.
	JournalRecords uint64 `json:"journal_records"`
	// JournalBytes counts journal bytes written since boot.
	JournalBytes uint64 `json:"journal_bytes"`
	// AppendErrors counts accepted requests served without a journal
	// record because Append failed (availability over durability).
	AppendErrors uint64 `json:"append_errors"`
	// WriteErrors counts failed journal writes inside the store.
	WriteErrors uint64 `json:"write_errors"`
	// FsyncErrors counts failed fsyncs.
	FsyncErrors uint64 `json:"fsync_errors"`
	// LastFsyncAgeMs is the age of the last successful journal fsync in
	// milliseconds (-1 before the first).
	LastFsyncAgeMs int64 `json:"last_fsync_age_ms"`
	// SnapshotSeq is the newest committed snapshot's sequence number.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotsWritten counts snapshots committed since boot.
	SnapshotsWritten uint64 `json:"snapshots_written"`
	// SnapshotErrors counts failed snapshot attempts.
	SnapshotErrors uint64 `json:"snapshot_errors"`
	// LastSnapshotAgeMs is the age of the newest snapshot committed this
	// run in milliseconds (-1 before the first).
	LastSnapshotAgeMs int64 `json:"last_snapshot_age_ms"`
	// Replay is the boot-time recovery summary (nil when the server
	// booted without recovering).
	Replay *RecoveryStats `json:"replay,omitempty"`
}

// encodeAccepted renders one accepted request as a journal payload: the
// record type, the resolved system params, the per-user overrides, and
// the canonical binary graph — exactly the inputs requestKey hashes, so
// replay reproduces the live request's cache identity.
func encodeAccepted(req *SolveRequest, params mec.Params) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(recAccepted)
	var f [8]byte
	for _, v := range []float64{
		params.ServerCapacity, params.DeviceCompute, params.PowerCompute,
		params.PowerTransmit, params.Bandwidth,
		req.FixedLocalWork, req.DeviceCompute, req.Bandwidth, req.PowerTransmit,
	} {
		binary.LittleEndian.PutUint64(f[:], math.Float64bits(v))
		buf.Write(f[:])
	}
	if err := req.Graph.WriteBinary(&buf); err != nil {
		return nil, fmt.Errorf("serve: encode accepted: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeAccepted inverts encodeAccepted, applying the same validation as
// the live decode path (graph limits, non-negative overrides, valid
// params) so a hostile or version-skewed record can never enter a solve
// round. It never panics (fuzzed by FuzzJournalReplay in the durable
// package's integration tests and exercised by recovery).
func decodeAccepted(payload []byte, limits DecodeLimits) (*SolveRequest, mec.Params, error) {
	limits = limits.withDefaults()
	const floats = 9
	if len(payload) < 1+floats*8 || payload[0] != recAccepted {
		return nil, mec.Params{}, fmt.Errorf("serve: not an accepted record")
	}
	var v [floats]float64
	for i := 0; i < floats; i++ {
		bits := binary.LittleEndian.Uint64(payload[1+i*8 : 9+i*8])
		v[i] = math.Float64frombits(bits)
		if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
			return nil, mec.Params{}, fmt.Errorf("serve: accepted record: non-finite value")
		}
	}
	params := mec.Params{
		ServerCapacity: v[0], DeviceCompute: v[1], PowerCompute: v[2],
		PowerTransmit: v[3], Bandwidth: v[4],
	}
	if err := params.Validate(); err != nil {
		return nil, mec.Params{}, fmt.Errorf("serve: accepted record: %w", err)
	}
	g, err := graph.ReadBinary(bytes.NewReader(payload[1+floats*8:]))
	if err != nil {
		return nil, mec.Params{}, fmt.Errorf("serve: accepted record: %w", err)
	}
	if g.NumNodes() == 0 || g.NumNodes() > limits.MaxNodes || g.NumEdges() > limits.MaxEdges {
		return nil, mec.Params{}, fmt.Errorf("serve: accepted record: graph out of limits")
	}
	req := &SolveRequest{
		Graph:          g,
		FixedLocalWork: v[5],
		DeviceCompute:  v[6],
		Bandwidth:      v[7],
		PowerTransmit:  v[8],
	}
	if req.FixedLocalWork < 0 || req.DeviceCompute < 0 || req.Bandwidth < 0 || req.PowerTransmit < 0 {
		return nil, mec.Params{}, fmt.Errorf("serve: accepted record: negative override")
	}
	return req, params, nil
}

// encodeMutate renders one accepted mutation as a journal payload: the
// record type, the resolved params and per-user overrides (same float
// block as an accepted record), the base fingerprint, and the delta as
// JSON. Replaying it against the interned base reconstructs the mutated
// graph and the same cache key the live mutate published under.
func encodeMutate(req *MutateRequest, params mec.Params) ([]byte, error) {
	body, err := json.Marshal(req.Delta)
	if err != nil {
		return nil, fmt.Errorf("serve: encode mutate: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteByte(recMutate)
	var f [8]byte
	for _, v := range []float64{
		params.ServerCapacity, params.DeviceCompute, params.PowerCompute,
		params.PowerTransmit, params.Bandwidth,
		req.FixedLocalWork, req.DeviceCompute, req.Bandwidth, req.PowerTransmit,
	} {
		binary.LittleEndian.PutUint64(f[:], math.Float64bits(v))
		buf.Write(f[:])
	}
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(req.Base)))
	buf.Write(l[:])
	buf.WriteString(req.Base)
	buf.Write(body)
	return buf.Bytes(), nil
}

// decodeMutate inverts encodeMutate, applying the same validation as the
// live decode path so a hostile or version-skewed record can never drive
// a replay solve.
func decodeMutate(payload []byte, limits DecodeLimits) (*MutateRequest, mec.Params, error) {
	limits = limits.withDefaults()
	const floats = 9
	if len(payload) < 1+floats*8+4 || payload[0] != recMutate {
		return nil, mec.Params{}, fmt.Errorf("serve: not a mutate record")
	}
	var v [floats]float64
	for i := 0; i < floats; i++ {
		bits := binary.LittleEndian.Uint64(payload[1+i*8 : 9+i*8])
		v[i] = math.Float64frombits(bits)
		if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
			return nil, mec.Params{}, fmt.Errorf("serve: mutate record: non-finite value")
		}
	}
	params := mec.Params{
		ServerCapacity: v[0], DeviceCompute: v[1], PowerCompute: v[2],
		PowerTransmit: v[3], Bandwidth: v[4],
	}
	if err := params.Validate(); err != nil {
		return nil, mec.Params{}, fmt.Errorf("serve: mutate record: %w", err)
	}
	rest := payload[1+floats*8:]
	n := binary.LittleEndian.Uint32(rest[:4])
	if int64(n) > int64(len(rest)-4) {
		return nil, mec.Params{}, fmt.Errorf("serve: mutate record: truncated fingerprint")
	}
	req := &MutateRequest{
		Base:           string(rest[4 : 4+n]),
		FixedLocalWork: v[5],
		DeviceCompute:  v[6],
		Bandwidth:      v[7],
		PowerTransmit:  v[8],
	}
	var delta graph.Delta
	if err := json.Unmarshal(rest[4+n:], &delta); err != nil {
		return nil, mec.Params{}, fmt.Errorf("serve: mutate record: %w", err)
	}
	req.Delta = &delta
	if err := validateMutate(req, limits); err != nil {
		return nil, mec.Params{}, fmt.Errorf("serve: mutate record: %w", err)
	}
	return req, params, nil
}

// encodeGraphRecord renders one interned graph as a snapshot payload.
func encodeGraphRecord(fp string, g *graph.Graph) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(recGraph)
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(fp)))
	buf.Write(l[:])
	buf.WriteString(fp)
	if err := g.WriteBinary(&buf); err != nil {
		return nil, fmt.Errorf("serve: encode graph record: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeGraphRecord inverts encodeGraphRecord.
func decodeGraphRecord(payload []byte, limits DecodeLimits) (string, *graph.Graph, error) {
	limits = limits.withDefaults()
	if len(payload) < 5 || payload[0] != recGraph {
		return "", nil, fmt.Errorf("serve: not a graph record")
	}
	n := binary.LittleEndian.Uint32(payload[1:5])
	if int64(n) > int64(len(payload)-5) {
		return "", nil, fmt.Errorf("serve: graph record: truncated fingerprint")
	}
	fp := string(payload[5 : 5+n])
	g, err := graph.ReadBinary(bytes.NewReader(payload[5+n:]))
	if err != nil {
		return "", nil, fmt.Errorf("serve: graph record: %w", err)
	}
	if g.NumNodes() == 0 || g.NumNodes() > limits.MaxNodes || g.NumEdges() > limits.MaxEdges {
		return "", nil, fmt.Errorf("serve: graph record: graph out of limits")
	}
	return fp, g, nil
}

// encodeDecisionRecord renders one cached decision as a snapshot payload
// (key length-prefixed, decision as JSON — the snapshot path is cold, so
// schema-tolerant JSON beats a hand-rolled layout).
func encodeDecisionRecord(key string, dec *Decision) ([]byte, error) {
	body, err := json.Marshal(dec)
	if err != nil {
		return nil, fmt.Errorf("serve: encode decision record: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteByte(recDecision)
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(key)))
	buf.Write(l[:])
	buf.WriteString(key)
	buf.Write(body)
	return buf.Bytes(), nil
}

// decodeDecisionRecord inverts encodeDecisionRecord.
func decodeDecisionRecord(payload []byte) (string, *Decision, error) {
	if len(payload) < 5 || payload[0] != recDecision {
		return "", nil, fmt.Errorf("serve: not a decision record")
	}
	n := binary.LittleEndian.Uint32(payload[1:5])
	if int64(n) > int64(len(payload)-5) {
		return "", nil, fmt.Errorf("serve: decision record: truncated key")
	}
	key := string(payload[5 : 5+n])
	var dec Decision
	if err := json.Unmarshal(payload[5+n:], &dec); err != nil {
		return "", nil, fmt.Errorf("serve: decision record: %w", err)
	}
	return key, &dec, nil
}

// counterSnapshot is the JSON body of a recCounters record: the
// monotonic traffic counters that survive a restart, so /v1/stats
// reports service history rather than process history.
type counterSnapshot struct {
	Requests    uint64 `json:"requests"`
	Solved      uint64 `json:"solved"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	BodyHits    uint64 `json:"body_hits"`
	Deduped     uint64 `json:"deduped"`
}

// encodeCountersRecord renders the traffic counters as a snapshot payload.
func encodeCountersRecord(c *counters) ([]byte, error) {
	body, err := json.Marshal(counterSnapshot{
		Requests:    c.requests.Load(),
		Solved:      c.solved.Load(),
		CacheHits:   c.cacheHits.Load(),
		CacheMisses: c.cacheMisses.Load(),
		BodyHits:    c.bodyHits.Load(),
		Deduped:     c.deduped.Load(),
	})
	if err != nil {
		return nil, fmt.Errorf("serve: encode counters record: %w", err)
	}
	return append([]byte{recCounters}, body...), nil
}

// restoreCountersRecord adds a recCounters payload into the live
// counters (which are zero at boot, so add = restore).
func restoreCountersRecord(payload []byte, c *counters) error {
	if len(payload) < 1 || payload[0] != recCounters {
		return fmt.Errorf("serve: not a counters record")
	}
	var snap counterSnapshot
	if err := json.Unmarshal(payload[1:], &snap); err != nil {
		return fmt.Errorf("serve: counters record: %w", err)
	}
	c.requests.Add(snap.Requests)
	c.solved.Add(snap.Solved)
	c.cacheHits.Add(snap.CacheHits)
	c.cacheMisses.Add(snap.CacheMisses)
	c.bodyHits.Add(snap.BodyHits)
	c.deduped.Add(snap.Deduped)
	return nil
}

// WriteSnapshotRecords streams the server's warm state — interned graphs
// first (so decisions restore against canonical instances), then cached
// decisions oldest-to-newest (so re-putting them on load reproduces LRU
// recency), then the traffic counters — through add, one record per
// call. It is safe to run concurrently with serving: each shard is
// copied under its own lock and encoded outside it.
func (s *Server) WriteSnapshotRecords(add func([]byte) error) error {
	var err error
	s.graphs.dump(func(fp string, g *graph.Graph) bool {
		var rec []byte
		if rec, err = encodeGraphRecord(fp, g); err != nil {
			return false
		}
		if err = add(rec); err != nil {
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	s.cache.dump(func(key string, dec *Decision) bool {
		var rec []byte
		if rec, err = encodeDecisionRecord(key, dec); err != nil {
			return false
		}
		if err = add(rec); err != nil {
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	rec, err := encodeCountersRecord(&s.st)
	if err != nil {
		return err
	}
	return add(rec)
}

// Recover warms the server from recovered durable state: the snapshot's
// graphs, decisions and counters are restored directly, then the journal
// tail — accepted requests whose decisions never reached a snapshot — is
// replayed through the shared session in admission-sized rounds. Records
// whose key is already warm are skipped (journal replay is idempotent:
// segments blocked from truncation replay again harmlessly). Call before
// Start, before the server accepts traffic; undecodable records and
// failed rounds are counted, never fatal — recovery prefers a cold key
// to a dead daemon.
func (s *Server) Recover(ctx context.Context, snapshot, journal [][]byte) RecoveryStats {
	var rs RecoveryStats
	for _, payload := range snapshot {
		if len(payload) == 0 {
			rs.DecodeErrors++
			continue
		}
		switch payload[0] {
		case recGraph:
			fp, g, err := decodeGraphRecord(payload, s.cfg.Limits)
			if err != nil {
				rs.DecodeErrors++
				continue
			}
			s.graphs.intern(fp, g)
			rs.SnapshotGraphs++
		case recDecision:
			key, dec, err := decodeDecisionRecord(payload)
			if err != nil {
				rs.DecodeErrors++
				continue
			}
			s.cache.put(key, dec, renderHit(dec))
			rs.SnapshotDecisions++
		case recCounters:
			if err := restoreCountersRecord(payload, &s.st); err != nil {
				rs.DecodeErrors++
			}
		default:
			rs.DecodeErrors++
		}
	}
	rs.JournalRecords = len(journal)

	// Decode the journal tail, dropping records already warm (restored by
	// the snapshot or duplicated within the tail), then re-solve the rest
	// grouped by params digest — the same rounds the batcher would have
	// formed — so replayed decisions carry live contention figures.
	type replayItem struct {
		key    string
		fp     string
		req    *SolveRequest
		params mec.Params
	}
	seen := make(map[string]bool)
	groups := make(map[string][]replayItem)
	var order []string
	for _, payload := range journal {
		var (
			req    *SolveRequest
			params mec.Params
			err    error
		)
		if len(payload) > 0 && payload[0] == recMutate {
			// A mutate record names its base by fingerprint; the walk is in
			// journal order, so the base is already interned (snapshot, an
			// earlier accepted record, or an earlier mutate in this tail)
			// and the delta re-applies to reconstruct the mutated graph.
			var mreq *MutateRequest
			mreq, params, err = decodeMutate(payload, s.cfg.Limits)
			if err != nil {
				rs.DecodeErrors++
				continue
			}
			base := s.graphs.lookup(mreq.Base)
			if base == nil {
				rs.ReplayErrors++
				s.logf("serve: replay mutate: %v: %s", ErrUnknownBase, mreq.Base)
				continue
			}
			if req, err = mutatedRequest(mreq, base, s.cfg.Limits); err != nil {
				rs.DecodeErrors++
				continue
			}
			rs.ReplayMutates++
		} else {
			if req, params, err = decodeAccepted(payload, s.cfg.Limits); err != nil {
				rs.DecodeErrors++
				continue
			}
		}
		key, fp, err := requestKey(req, params)
		if err != nil {
			rs.DecodeErrors++
			continue
		}
		// Intern before the warm-skip: a later mutate record may name this
		// record's graph as its base even when the decision itself is warm.
		req.Graph = s.graphs.intern(fp, req.Graph)
		if seen[key] {
			rs.ReplayWarm++
			continue
		}
		seen[key] = true
		if _, _, ok := s.cache.get(key); ok {
			rs.ReplayWarm++
			continue
		}
		pk := paramsDigest(params)
		if _, ok := groups[pk]; !ok {
			order = append(order, pk)
		}
		groups[pk] = append(groups[pk], replayItem{key: key, fp: fp, req: req, params: params})
	}

	maxBatch := s.cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	for _, pk := range order {
		items := groups[pk]
		for len(items) > 0 {
			round := items
			if len(round) > maxBatch {
				round = round[:maxBatch]
			}
			items = items[len(round):]
			users := make([]core.UserInput, len(round))
			for i, it := range round {
				users[i] = core.UserInput{
					Graph:          it.req.Graph,
					FixedLocalWork: it.req.FixedLocalWork,
					DeviceCompute:  it.req.DeviceCompute,
					Bandwidth:      it.req.Bandwidth,
					PowerTransmit:  it.req.PowerTransmit,
				}
			}
			sol, err := s.sess.SolveWithParams(ctx, users, round[0].params)
			if err != nil {
				rs.ReplayErrors++
				s.logf("serve: replay round of %d users failed: %v", len(users), err)
				continue
			}
			for i, it := range round {
				dec := decisionFor(it.fp, sol, i, len(users))
				s.cache.put(it.key, dec, renderHit(dec))
				rs.ReplaySolved++
			}
		}
	}
	s.recovery.Store(&rs)
	return rs
}
