package serve

// Shard-count policy for the fingerprint-keyed tables (solution cache,
// body-identity cache, graph intern). Shard counts are powers of two so a
// key's shard is a mask of its hashed prefix, and they scale down with the
// configured capacity so tiny test configurations (capacity 1 or 2) keep
// the exact single-LRU semantics the unit tests assert.
const (
	// maxTableShards caps the shard count of any sharded table.
	maxTableShards = 16
	// minShardEntries is the smallest per-shard capacity worth splitting
	// for; below it, fewer shards with exact LRU behavior win.
	minShardEntries = 8
)

// shardCountFor returns the power-of-two shard count for a table of the
// given total capacity: the largest power of two ≤ maxTableShards that
// still leaves every shard at least minShardEntries entries, and at least
// one shard.
func shardCountFor(capacity int) int {
	n := 1
	for n*2 <= maxTableShards && capacity/(n*2) >= minShardEntries {
		n *= 2
	}
	return n
}

// shardPrefix hashes the leading bytes of a table key (FNV-1a over at most
// the first 16 bytes). Cache and singleflight keys are hex SHA-256 digests,
// so their prefix alone is uniformly distributed; hashing — rather than
// using raw nibbles — keeps the function total over the arbitrary short
// keys unit tests use. Masking the result with a power-of-two shard count
// picks the shard.
func shardPrefix(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	n := len(key)
	if n > 16 {
		n = 16
	}
	for i := 0; i < n; i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}
