package serve

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestTaskRingPushPopOrder(t *testing.T) {
	r := newTaskRing(4)
	if _, ok := r.pop(); ok {
		t.Fatal("empty ring popped a task")
	}
	tasks := make([]*solveTask, 4)
	for i := range tasks {
		tasks[i] = &solveTask{p: newPending(string(rune('a' + i)))}
		if !r.push(tasks[i]) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.push(&solveTask{p: newPending("overflow")}) {
		t.Fatal("push succeeded on a full ring")
	}
	for i := range tasks {
		got, ok := r.pop()
		if !ok || got != tasks[i] {
			t.Fatalf("pop %d = %v, %v; want task %d", i, got, ok, i)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("drained ring popped a task")
	}
}

func TestTaskRingWraparound(t *testing.T) {
	// Push/pop far past the capacity so the cursors lap the slot array
	// repeatedly; FIFO order must hold across laps.
	r := newTaskRing(2)
	for lap := 0; lap < 100; lap++ {
		a := &solveTask{p: newPending("a")}
		b := &solveTask{p: newPending("b")}
		if !r.push(a) || !r.push(b) {
			t.Fatalf("lap %d: push rejected with free slots", lap)
		}
		if got, _ := r.pop(); got != a {
			t.Fatalf("lap %d: first pop out of order", lap)
		}
		if got, _ := r.pop(); got != b {
			t.Fatalf("lap %d: second pop out of order", lap)
		}
	}
}

func TestTaskRingMinimumCapacityTwo(t *testing.T) {
	// A one-slot Vyukov ring cannot distinguish "published, unconsumed"
	// from "free for the next lap"; the constructor must round up to 2.
	r := newTaskRing(1)
	if r.cap() != 2 {
		t.Fatalf("cap = %d, want 2", r.cap())
	}
	a := &solveTask{p: newPending("a")}
	b := &solveTask{p: newPending("b")}
	if !r.push(a) || !r.push(b) {
		t.Fatal("two pushes must fit the minimum ring")
	}
	if r.push(&solveTask{p: newPending("c")}) {
		t.Fatal("third push must be rejected, not overwrite")
	}
	if got, _ := r.pop(); got != a {
		t.Fatal("first pop lost the oldest task")
	}
}

func TestTaskRingConcurrentProducersLossless(t *testing.T) {
	// Hammer one ring from many producers with a concurrent single
	// consumer (the MPSC contract): every accepted push must be popped
	// exactly once. Run under -race this also checks the publication
	// ordering of the seq stores.
	const producers, perProducer = 8, 500
	r := newTaskRing(64)
	var accepted atomic.Uint64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if r.push(&solveTask{p: newPending("k")}) {
					accepted.Add(1)
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var popped uint64
	for {
		if _, ok := r.pop(); ok {
			popped++
			continue
		}
		select {
		case <-done:
			// Producers are finished; drain what is left and stop.
			for {
				if _, ok := r.pop(); !ok {
					if popped != accepted.Load() {
						t.Fatalf("popped %d of %d accepted tasks", popped, accepted.Load())
					}
					return
				}
				popped++
			}
		default:
		}
	}
}
