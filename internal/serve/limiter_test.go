package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestRateLimiterNilAllowsEverything(t *testing.T) {
	var l *rateLimiter
	for i := 0; i < 1000; i++ {
		if !l.allow() {
			t.Fatal("nil limiter refused a request")
		}
	}
}

func TestRateLimiterBurstThenRefill(t *testing.T) {
	// 100 QPS with a burst of 10: the first ~10 immediate requests pass,
	// the 50th immediate request cannot.
	l := newRateLimiter(100, 10)
	allowed := 0
	for i := 0; i < 50; i++ {
		if l.allow() {
			allowed++
		}
	}
	if allowed < 10 || allowed > 12 {
		t.Fatalf("immediate burst admitted %d, want ≈10", allowed)
	}
	// After the emission interval passes, capacity returns.
	time.Sleep(25 * time.Millisecond)
	if !l.allow() {
		t.Fatal("no admission after refill interval")
	}
}

func TestRateLimiterSustainedRate(t *testing.T) {
	// Hammer a 200 QPS limiter for 250ms: admissions must stay within the
	// burst plus the rate budget for the window (generous upper bound to
	// stay robust on a loaded runner).
	l := newRateLimiter(200, 5)
	start := time.Now()
	allowed := 0
	for time.Since(start) < 250*time.Millisecond {
		if l.allow() {
			allowed++
		}
	}
	elapsed := time.Since(start).Seconds()
	max := int(200*elapsed) + 5 + 2
	if allowed > max {
		t.Fatalf("admitted %d in %.0fms, budget %d", allowed, elapsed*1000, max)
	}
	if allowed < 5 {
		t.Fatalf("admitted only %d, want at least the burst", allowed)
	}
}

func TestRateLimiterConcurrentBudget(t *testing.T) {
	// 16 goroutines racing the CAS loop must not over-admit: the total
	// stays within burst + rate×elapsed, and nobody deadlocks.
	l := newRateLimiter(500, 8)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	start := time.Now()
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 2000; i++ {
				if l.allow() {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	max := int(500*elapsed) + 8 + 2
	if total > max {
		t.Fatalf("concurrent admissions %d exceed budget %d (%.0fms run)", total, max, elapsed*1000)
	}
}

func TestServerRateLimitSheds429(t *testing.T) {
	// A capped server sheds excess offered load with 429 + Retry-After
	// before reading the body, and counts it under rate_limited (not shed).
	s := newTestServer(t, Config{MaxQPS: 50, RateBurst: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer func() {
		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer dcancel()
		_ = s.Drain(dctx)
	}()

	body := solveBody(t, testGraph(t, 0))
	limited := 0
	for i := 0; i < 40; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
		s.handleSolve(rec, req.WithContext(ctx))
		switch rec.Code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			limited++
			if rec.Header().Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	if limited == 0 {
		t.Fatal("no request was rate limited at 40 back-to-back arrivals against a 50 QPS cap")
	}
	st := s.Stats()
	if st.RateLimited != uint64(limited) {
		t.Fatalf("stats.RateLimited = %d, want %d", st.RateLimited, limited)
	}
	if st.Shed != 0 {
		t.Fatalf("stats.Shed = %d, want 0 (rate-limit sheds are counted separately)", st.Shed)
	}
}

func TestHealthEndpointReportsStateAndUptime(t *testing.T) {
	s := newTestServer(t, Config{ID: "backend-7"})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	rec := httptest.NewRecorder()
	s.handleHealth(rec, httptest.NewRequest(http.MethodGet, "/v1/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("health status = %d, want 200", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("decode health: %v", err)
	}
	if h.Status != "ready" {
		t.Fatalf("status = %q, want ready", h.Status)
	}
	if h.ID != "backend-7" {
		t.Fatalf("id = %q, want backend-7", h.ID)
	}
	if h.UptimeS < 0 {
		t.Fatalf("uptime_s = %v, want ≥ 0", h.UptimeS)
	}

	// POST is rejected; the endpoint is a read-only probe.
	rec = httptest.NewRecorder()
	s.handleHealth(rec, httptest.NewRequest(http.MethodPost, "/v1/health", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST health = %d, want 405", rec.Code)
	}

	// A draining server still answers 200 but reports it, unlike
	// /v1/healthz which flips to 503 — that contrast is the point of
	// having both endpoints.
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	rec = httptest.NewRecorder()
	s.handleHealth(rec, httptest.NewRequest(http.MethodGet, "/v1/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("draining health status = %d, want 200", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("decode draining health: %v", err)
	}
	if h.Status != "draining" {
		t.Fatalf("draining status = %q, want draining", h.Status)
	}
}
