package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestStatsSnapshotDuringSolveStorm hammers GET /v1/stats while 64
// concurrent clients drive /v1/solve over a mix of repeat and distinct
// graphs. Under -race (the CI default for this package) it proves the
// lock-free snapshot reads every padded counter, histogram bucket, shard
// occupancy and lane gauge without a data race; the assertions check the
// books still balance once the storm settles.
func TestStatsSnapshotDuringSolveStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm test skipped in -short mode")
	}
	s := newTestServer(t, Config{CacheSize: 8})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	// 8 distinct graphs over an 8-entry cache: early requests solve, the
	// rest split between cache hits and singleflight followers.
	bodies := make([][]byte, 8)
	for i := range bodies {
		bodies[i] = solveBody(t, testGraph(t, i))
	}

	const clients, perClient = 64, 20
	stop := make(chan struct{})
	var statsWG sync.WaitGroup
	statsWG.Add(2)
	for g := 0; g < 2; g++ {
		go func() {
			defer statsWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Exercise both the struct snapshot and the HTTP rendering.
				_ = s.Stats()
				w := httptest.NewRecorder()
				s.handleStats(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
				if w.Code != http.StatusOK {
					t.Errorf("stats status = %d", w.Code)
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w := &nopResponseWriter{}
			for i := 0; i < perClient; i++ {
				body := bodies[(c+i)%len(bodies)]
				if st := postDirect(s, body, w, ctx); st != http.StatusOK {
					t.Errorf("solve status = %d", st)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	statsWG.Wait()

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st := s.Stats()
	const total = clients * perClient
	if st.Requests != total {
		t.Fatalf("requests = %d, want %d", st.Requests, total)
	}
	if st.Solved != total {
		t.Fatalf("solved = %d, want %d (every request got a 200)", st.Solved, total)
	}
	if got := st.Cache.Hits + st.Cache.Misses + st.Deduped; got != total {
		t.Fatalf("hits(%d) + misses(%d) + deduped(%d) = %d, want %d",
			st.Cache.Hits, st.Cache.Misses, st.Deduped, got, total)
	}
	if st.Latency.Count != total {
		t.Fatalf("latency count = %d, want %d", st.Latency.Count, total)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after the storm settled", st.InFlight)
	}
}
