package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"copmecs/internal/core"
	"copmecs/internal/mec"
)

// Batching defaults (overridable via Config).
const (
	// DefaultMaxBatch is the largest solve round the batcher assembles.
	DefaultMaxBatch = 16
	// DefaultBatchWait is how long a round waits for co-arrivals after its
	// first request.
	DefaultBatchWait = 2 * time.Millisecond
	// DefaultQueueDepth bounds the accept queue; a full queue sheds load.
	DefaultQueueDepth = 256
)

// pending is one singleflight cell: the first request for a key becomes
// the leader and is enqueued for a solve round; identical requests
// arriving while it is in flight attach as followers and share the
// result. mult tracks the live multiplicity (leader + followers), which
// the dispatcher expands into that many users of the solve round so the
// paper's shared-server contention (ActiveUsers = k) reflects the real
// concurrent load, not the deduplicated one.
type pending struct {
	key  string
	done chan struct{} // closed exactly once when dec/err are set
	dec  *Decision
	err  error
	mult atomic.Int64
}

// newPending returns a cell with multiplicity 1 (the leader).
func newPending(key string) *pending {
	p := &pending{key: key, done: make(chan struct{})}
	p.mult.Store(1)
	return p
}

// solveTask is one accepted leader request waiting for a solve round.
type solveTask struct {
	p      *pending
	user   core.UserInput
	params mec.Params
	pkey   string // paramsDigest; rounds group by it
}

// batcher coalesces concurrently arriving solve tasks into multi-user
// rounds: a round opens when the first task arrives, admits co-arrivals
// for maxWait (or until maxBatch), and is then dispatched as one
// multi-user core.Solve. This is the serving-path version of the paper's
// batch setting — the users of one round share the edge server, and the
// model's ActiveUsers comes from the live round.
type batcher struct {
	queue    chan *solveTask
	maxBatch int
	maxWait  time.Duration
	dispatch func(context.Context, []*solveTask)
	stop     chan struct{}
	stopO    sync.Once
	done     chan struct{}
}

// stopOnce closes the stop channel exactly once; run then drains the
// queue and exits.
func (b *batcher) stopOnce() {
	b.stopO.Do(func() { close(b.stop) })
}

// newBatcher returns a batcher feeding dispatch. The caller starts it with
// go b.run(ctx) and stops it with close(b.stop) after the queue is known
// to be settled; run drains every queued task before exiting.
func newBatcher(maxBatch, queueDepth int, maxWait time.Duration, dispatch func(context.Context, []*solveTask)) *batcher {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	if maxWait <= 0 {
		maxWait = DefaultBatchWait
	}
	return &batcher{
		queue:    make(chan *solveTask, queueDepth),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		dispatch: dispatch,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// run is the dispatch loop. It exits after stop is closed and the queue
// has been drained; every accepted task is dispatched exactly once, which
// is what makes graceful drain lossless.
func (b *batcher) run(ctx context.Context) {
	defer close(b.done)
	for {
		var first *solveTask
		select {
		case first = <-b.queue:
		case <-b.stop:
			b.drainQueued(ctx)
			return
		}
		b.dispatch(ctx, b.collect(first))
	}
}

// collect assembles one round: first plus co-arrivals until the window
// closes, the round fills, or the batcher is stopped.
func (b *batcher) collect(first *solveTask) []*solveTask {
	round := []*solveTask{first}
	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	for len(round) < b.maxBatch {
		select {
		case t := <-b.queue:
			round = append(round, t)
		case <-timer.C:
			return round
		case <-b.stop:
			return round
		}
	}
	return round
}

// drainQueued dispatches everything still queued at stop time in maxBatch
// rounds, without waiting out batch windows.
func (b *batcher) drainQueued(ctx context.Context) {
	for {
		select {
		case t := <-b.queue:
			round := []*solveTask{t}
		fill:
			for len(round) < b.maxBatch {
				select {
				case t2 := <-b.queue:
					round = append(round, t2)
				default:
					break fill
				}
			}
			b.dispatch(ctx, round)
		default:
			return
		}
	}
}
