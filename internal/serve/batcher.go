package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"copmecs/internal/core"
	"copmecs/internal/mec"
)

// Batching defaults (overridable via Config).
const (
	// DefaultMaxBatch is the largest solve round the batcher assembles.
	DefaultMaxBatch = 16
	// DefaultBatchWait is how long a round waits for co-arrivals after its
	// first request.
	DefaultBatchWait = 2 * time.Millisecond
	// DefaultQueueDepth bounds the accept queue; a full queue sheds load.
	DefaultQueueDepth = 256
	// maxBatchLanes caps the enqueue lane count (power of two).
	maxBatchLanes = 16
)

// pending is one singleflight cell: the first request for a key becomes
// the leader and is enqueued for a solve round; identical requests
// arriving while it is in flight attach as followers and share the
// result. mult tracks the live multiplicity (leader + followers), which
// the dispatcher expands into that many users of the solve round so the
// paper's shared-server contention (ActiveUsers = k) reflects the real
// concurrent load, not the deduplicated one.
type pending struct {
	key  string
	done chan struct{} // closed exactly once when dec/err are set
	dec  *Decision
	err  error
	mult atomic.Int64
}

// newPending returns a cell with multiplicity 1 (the leader).
func newPending(key string) *pending {
	p := &pending{key: key, done: make(chan struct{})}
	p.mult.Store(1)
	return p
}

// solveTask is one accepted leader request waiting for a solve round.
type solveTask struct {
	p         *pending
	user      core.UserInput
	params    mec.Params
	pkey      string // paramsDigest; rounds group by it
	fp        string // canonical graph fingerprint, echoed in the decision
	lane      uint32 // enqueue lane, derived from the graph fingerprint
	jseg      uint64 // journal token from Append, released in finish
	journaled bool   // jseg is live (a write-ahead record exists)
}

// batcher coalesces concurrently arriving solve tasks into multi-user
// rounds: a round opens when the first task arrives, admits co-arrivals
// for maxWait (or until maxBatch), and is then dispatched as one
// multi-user core.Solve. This is the serving-path version of the paper's
// batch setting — the users of one round share the edge server, and the
// model's ActiveUsers comes from the live round.
//
// The accept queue is split into per-lane bounded MPSC rings (lane chosen
// from the request's graph fingerprint, so tasks for one application
// stream through one lane in FIFO order and singleflight dedup semantics
// are untouched). Producers therefore never contend on a shared queue
// mutex: a push is one CAS on the lane's ring. The single dispatch
// goroutine sweeps the lanes round-robin, woken through a one-token
// wake channel.
type batcher struct {
	lanes    []*batchLane
	laneMask uint32
	maxBatch int
	maxWait  time.Duration
	dispatch func(context.Context, []*solveTask)
	wake     chan struct{} // one-token producer→consumer doorbell
	stop     chan struct{}
	stopO    sync.Once
	done     chan struct{}
}

// batchLane is one enqueue lane: a bounded MPSC ring plus its counters.
type batchLane struct {
	ring     *taskRing
	enqueued atomic.Uint64 // tasks accepted into this lane
	rejected atomic.Uint64 // pushes refused because the lane was full
}

// stopOnce closes the stop channel exactly once; run then drains the
// lanes and exits.
func (b *batcher) stopOnce() {
	b.stopO.Do(func() { close(b.stop) })
}

// laneCountFor resolves the lane count: the largest power of two ≤
// maxBatchLanes that keeps each lane's ring at least one deep for the
// requested total queue depth. lanes > 0 forces an explicit count
// (rounded up to a power of two, capped at maxBatchLanes).
func laneCountFor(lanes, queueDepth int) int {
	if lanes > 0 {
		n := 1
		for n < lanes && n < maxBatchLanes {
			n *= 2
		}
		return n
	}
	n := 1
	for n*2 <= maxBatchLanes && queueDepth/(n*2) >= 1 {
		n *= 2
	}
	return n
}

// newBatcher returns a batcher feeding dispatch, with queueDepth split
// over laneCountFor(lanes, queueDepth) rings. The caller starts it with
// go b.run(ctx) and stops it with stopOnce after the queue is known to be
// settled; run drains every queued task before exiting.
func newBatcher(maxBatch, queueDepth, lanes int, maxWait time.Duration, dispatch func(context.Context, []*solveTask)) *batcher {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	if maxWait <= 0 {
		maxWait = DefaultBatchWait
	}
	n := laneCountFor(lanes, queueDepth)
	perLane := (queueDepth + n - 1) / n
	b := &batcher{
		lanes:    make([]*batchLane, n),
		laneMask: uint32(n - 1),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		dispatch: dispatch,
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := range b.lanes {
		b.lanes[i] = &batchLane{ring: newTaskRing(perLane)}
	}
	return b
}

// enqueue publishes t on its lane, returning false (shed) when the lane
// is full. Safe for concurrent producers; a successful push rings the
// dispatch goroutine's doorbell.
func (b *batcher) enqueue(t *solveTask) bool {
	lane := b.lanes[t.lane&b.laneMask]
	if !lane.ring.push(t) {
		lane.rejected.Add(1)
		return false
	}
	lane.enqueued.Add(1)
	select {
	case b.wake <- struct{}{}:
	default: // a token is already pending; the consumer will re-sweep
	}
	return true
}

// tryPop sweeps the lanes round-robin from *cursor, returning the first
// queued task. Only the dispatch goroutine calls it.
func (b *batcher) tryPop(cursor *int) (*solveTask, bool) {
	for i := 0; i < len(b.lanes); i++ {
		lane := b.lanes[(*cursor+i)%len(b.lanes)]
		if t, ok := lane.ring.pop(); ok {
			*cursor = (*cursor + i + 1) % len(b.lanes)
			return t, true
		}
	}
	return nil, false
}

// depth reports the total number of queued tasks across lanes (a
// monitoring gauge; it races with concurrent pushes by design).
func (b *batcher) depth() int {
	n := 0
	for _, lane := range b.lanes {
		n += lane.ring.len()
	}
	return n
}

// laneStats snapshots the per-lane counters for /v1/stats.
func (b *batcher) laneStats() []LaneStats {
	stats := make([]LaneStats, len(b.lanes))
	for i, lane := range b.lanes {
		stats[i] = LaneStats{
			Depth:    lane.ring.len(),
			Capacity: lane.ring.cap(),
			Enqueued: lane.enqueued.Load(),
			Rejected: lane.rejected.Load(),
		}
	}
	return stats
}

// run is the dispatch loop. It exits after stop is closed and the lanes
// have been drained; every accepted task is dispatched exactly once,
// which is what makes graceful drain lossless.
func (b *batcher) run(ctx context.Context) {
	defer close(b.done)
	cursor := 0
	for {
		first, ok := b.tryPop(&cursor)
		if !ok {
			select {
			case <-b.wake:
				continue // re-sweep: the push precedes its doorbell
			case <-b.stop:
				b.drainQueued(ctx, &cursor)
				return
			}
		}
		b.dispatch(ctx, b.collect(first, &cursor))
	}
}

// collect assembles one round: first plus co-arrivals until the window
// closes, the round fills, or the batcher is stopped.
func (b *batcher) collect(first *solveTask, cursor *int) []*solveTask {
	round := []*solveTask{first}
	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	for len(round) < b.maxBatch {
		if t, ok := b.tryPop(cursor); ok {
			round = append(round, t)
			continue
		}
		select {
		case <-b.wake:
		case <-timer.C:
			return round
		case <-b.stop:
			return round
		}
	}
	return round
}

// drainQueued dispatches everything still queued at stop time in maxBatch
// rounds, without waiting out batch windows.
func (b *batcher) drainQueued(ctx context.Context, cursor *int) {
	for {
		first, ok := b.tryPop(cursor)
		if !ok {
			return
		}
		round := []*solveTask{first}
		for len(round) < b.maxBatch {
			t, ok := b.tryPop(cursor)
			if !ok {
				break
			}
			round = append(round, t)
		}
		b.dispatch(ctx, round)
	}
}
