package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// nopResponseWriter discards the response body so the handler benchmarks
// measure the serving hot path (decode → key → cache/singleflight → batch)
// rather than httptest.ResponseRecorder's buffer growth.
type nopResponseWriter struct {
	h      http.Header
	status int
}

func (w *nopResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}

func (w *nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

func (w *nopResponseWriter) WriteHeader(status int) { w.status = status }

// postDirect drives handleSolve in-process: no sockets, no recorder buffer,
// so contention between parallel callers is the dominant shared cost.
func postDirect(s *Server, body []byte, w *nopResponseWriter, ctx context.Context) int {
	w.status = http.StatusOK
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
	req.Body = io.NopCloser(bytes.NewReader(body))
	s.handleSolve(w, req.WithContext(ctx))
	return w.status
}

// BenchmarkHandleParallel measures handler throughput under b.RunParallel
// across the three serving regimes this package optimises for:
//
//   - hit: every request is a warm solution-cache hit (the common case for
//     repeat graphs); this is the path the sharded cache and lock-free
//     stats exist for, and the scaling subject of the PR gate.
//   - miss: requests cycle many distinct graphs through a small cache, so
//     most of them take the full singleflight → lane → batch → solve path.
//   - dedupstorm: parallel callers hammer two alternating keys through a
//     one-entry cache, so every round mixes misses with live singleflight
//     followers (the dedup bookkeeping path).
//
// Run with -cpu 8 to compare scaling against the global-lock baseline.
func BenchmarkHandleParallel(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		s := newTestServer(b, Config{})
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		s.Start(ctx)
		body := solveBody(b, testGraph(b, 0))
		w := &nopResponseWriter{}
		if st := postDirect(s, body, w, ctx); st != http.StatusOK {
			b.Fatalf("warm request: status %d", st)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			w := &nopResponseWriter{}
			for pb.Next() {
				if st := postDirect(s, body, w, ctx); st != http.StatusOK {
					b.Fatalf("status %d", st)
				}
			}
		})
		b.StopTimer()
		st := s.Stats()
		if st.Cache.Hits == 0 {
			b.Fatal("hit benchmark never hit the cache")
		}
	})

	b.Run("miss", func(b *testing.B) {
		// 64 distinct graphs through a 16-entry cache: ~75% of arrivals
		// miss and exercise admission, lanes, and batch dispatch.
		s := newTestServer(b, Config{CacheSize: 16, BatchWait: 100 * time.Microsecond})
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		s.Start(ctx)
		bodies := make([][]byte, 64)
		for i := range bodies {
			bodies[i] = solveBody(b, testGraph(b, i))
		}
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			w := &nopResponseWriter{}
			for pb.Next() {
				body := bodies[next.Add(1)%uint64(len(bodies))]
				st := postDirect(s, body, w, ctx)
				if st != http.StatusOK && st != http.StatusTooManyRequests {
					b.Fatalf("status %d", st)
				}
			}
		})
	})

	b.Run("dedupstorm", func(b *testing.B) {
		// A one-entry cache and two alternating bodies: each put evicts the
		// other key, so parallel callers keep colliding on in-flight cells.
		s := newTestServer(b, Config{CacheSize: 1, BatchWait: 100 * time.Microsecond})
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		s.Start(ctx)
		bodies := [2][]byte{solveBody(b, testGraph(b, 0)), solveBody(b, testGraph(b, 1))}
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			w := &nopResponseWriter{}
			for pb.Next() {
				body := bodies[next.Add(1)%2]
				st := postDirect(s, body, w, ctx)
				if st != http.StatusOK && st != http.StatusTooManyRequests {
					b.Fatalf("status %d", st)
				}
			}
		})
	})
}

// cacheHitAllocBudget caps allocations for one warm cache-hit request
// through handleSolve (request construction included). The hit path must
// stay flat as the serving layers evolve; raising this number needs a
// justification in the PR that does it. The body-digest fast path (no
// JSON decode, no graph hashing, pre-rendered response bytes) measures
// ~15; the budget leaves headroom for harness noise only.
const cacheHitAllocBudget = 24

func TestCacheHitAllocBudget(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	body := solveBody(t, testGraph(t, 0))
	w := &nopResponseWriter{}
	if st := postDirect(s, body, w, ctx); st != http.StatusOK {
		t.Fatalf("warm request: status %d", st)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if st := postDirect(s, body, w, ctx); st != http.StatusOK {
			t.Fatalf("status %d", st)
		}
	})
	if allocs > cacheHitAllocBudget {
		t.Fatalf("cache-hit path allocates %.1f objects per request, budget %d",
			allocs, cacheHitAllocBudget)
	}
	t.Logf("cache-hit allocations: %.1f (budget %d)", allocs, cacheHitAllocBudget)
}
