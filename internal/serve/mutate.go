package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"copmecs/internal/core"
	"copmecs/internal/graph"
	"copmecs/internal/mec"
)

// POST /v1/mutate is the dynamic-graph entry point: instead of re-sending
// a whole graph after a topology or weight change, a client names the base
// graph by its fingerprint (returned by a previous solve or mutate) and
// ships only the delta. The server applies the delta to the interned base,
// solves the mutated graph through the session's incremental path — clean
// components replay their cached cuts, only touched components re-run
// compression and the eigensolver — and publishes the decision under the
// mutated graph's fingerprint, so follow-up /v1/solve and /v1/mutate calls
// (on any client) find the new graph warm.
//
// The decision is bit-for-bit what a cold /v1/solve of the mutated graph
// would produce (the exactness invariant of core.SolveDelta), so the
// solution cache never distinguishes how an entry was computed.

// ErrUnknownBase is returned when the named base fingerprint is not
// interned on this server; mapped to 404.
var ErrUnknownBase = errors.New("serve: unknown base graph fingerprint")

// fingerprintHexLen is the length of a canonical graph fingerprint
// (hex-encoded SHA-256).
const fingerprintHexLen = 64

// MutateRequest is the POST /v1/mutate body: the base graph fingerprint,
// the delta to apply, and the same optional params/user overrides a solve
// request carries (they shape the round the mutated graph is solved in).
type MutateRequest struct {
	// Base is the canonical fingerprint of the graph to mutate (required;
	// the graph must be interned on this server from an earlier request).
	Base string `json:"base"`
	// Delta is the mutation batch (required; see graph.Delta for the
	// application order).
	Delta *graph.Delta `json:"delta"`
	// Params optionally overrides the daemon's mec.Params.
	Params *ParamsJSON `json:"params,omitempty"`
	// FixedLocalWork is computation pinned to the device.
	FixedLocalWork float64 `json:"fixed_local_work,omitempty"`
	// DeviceCompute overrides the default device speed when positive.
	DeviceCompute float64 `json:"device_compute,omitempty"`
	// Bandwidth overrides the default uplink rate when positive.
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// PowerTransmit overrides the default radio power when positive.
	PowerTransmit float64 `json:"power_transmit,omitempty"`
}

// MutateResponse is the POST /v1/mutate 200 body: the mutated graph's
// fingerprint (the handle for chained mutations), the offloading decision
// for it, and what the incremental pipeline did.
type MutateResponse struct {
	// Graph is the mutated graph's canonical fingerprint.
	Graph string `json:"graph"`
	// Base echoes the request's base fingerprint.
	Base string `json:"base"`
	SolveResponse
	// Incremental reports the delta-patched pipeline ran (false on a cache
	// hit or a cold fallback).
	Incremental bool `json:"incremental"`
	// ColdFallback reports the solve ran the cold pipeline; FallbackReason
	// says why.
	ColdFallback   bool   `json:"cold_fallback"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	// CleanComponents replayed cached cuts; DirtyComponents were re-cut.
	CleanComponents int `json:"clean_components"`
	DirtyComponents int `json:"dirty_components"`
	// TouchedEdges is the delta's footprint on the patched view.
	TouchedEdges int `json:"touched_edges"`
	// LanczosItersSaved is the eigensolver work the replay avoided.
	LanczosItersSaved int `json:"lanczos_iters_saved"`
}

// DecodeMutateRequest reads one JSON mutate body, rejecting malformed
// JSON, unknown fields, missing/invalid base fingerprints, missing deltas
// and deltas whose operation count exceeds the edge limit. Every error
// wraps ErrBadRequest. Graph-level validation (node existence, negative
// weights) happens when the delta is applied.
func DecodeMutateRequest(r io.Reader, limits DecodeLimits) (*MutateRequest, error) {
	limits = limits.withDefaults()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req MutateRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("%w: trailing data after request", ErrBadRequest)
	}
	if err := validateMutate(&req, limits); err != nil {
		return nil, err
	}
	return &req, nil
}

// validateMutate applies the decode-level checks shared by the HTTP path
// and journal-record replay.
func validateMutate(req *MutateRequest, limits DecodeLimits) error {
	if len(req.Base) != fingerprintHexLen {
		return fmt.Errorf("%w: base fingerprint must be %d hex characters", ErrBadRequest, fingerprintHexLen)
	}
	for _, c := range req.Base {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("%w: base fingerprint is not lowercase hex", ErrBadRequest)
		}
	}
	if req.Delta == nil {
		return fmt.Errorf("%w: request has no delta", ErrBadRequest)
	}
	if ops := req.Delta.Ops(); ops > limits.MaxEdges {
		return fmt.Errorf("%w: %w: %d delta operations (limit %d)", ErrBadRequest, ErrTooLarge, ops, limits.MaxEdges)
	}
	if req.FixedLocalWork < 0 || req.DeviceCompute < 0 || req.Bandwidth < 0 || req.PowerTransmit < 0 {
		return fmt.Errorf("%w: negative override", ErrBadRequest)
	}
	if p := req.Params; p != nil &&
		(p.ServerCapacity < 0 || p.DeviceCompute < 0 || p.PowerCompute < 0 ||
			p.PowerTransmit < 0 || p.Bandwidth < 0) {
		return fmt.Errorf("%w: negative params override", ErrBadRequest)
	}
	return nil
}

// mutatedRequest applies req's delta to base and wraps the result as the
// synthetic solve request whose cache identity the mutate shares with a
// plain solve of the mutated graph. base is never modified.
func mutatedRequest(req *MutateRequest, base *graph.Graph, limits DecodeLimits) (*SolveRequest, error) {
	limits = limits.withDefaults()
	mutated := base.Clone()
	if err := req.Delta.Apply(mutated); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if mutated.NumNodes() == 0 {
		return nil, fmt.Errorf("%w: delta removes every node", ErrBadRequest)
	}
	if n := mutated.NumNodes(); n > limits.MaxNodes {
		return nil, fmt.Errorf("%w: %w: mutated graph has %d nodes (limit %d)", ErrBadRequest, ErrTooLarge, n, limits.MaxNodes)
	}
	if m := mutated.NumEdges(); m > limits.MaxEdges {
		return nil, fmt.Errorf("%w: %w: mutated graph has %d edges (limit %d)", ErrBadRequest, ErrTooLarge, m, limits.MaxEdges)
	}
	return &SolveRequest{
		Graph:          mutated,
		FixedLocalWork: req.FixedLocalWork,
		DeviceCompute:  req.DeviceCompute,
		Bandwidth:      req.Bandwidth,
		PowerTransmit:  req.PowerTransmit,
	}, nil
}

// handleMutate serves POST /v1/mutate: decode → base lookup → delta apply
// → cache check on the mutated graph's key → write-ahead journal →
// incremental solve → publish under the new fingerprint.
//
// Mutates bypass the micro-batcher: a mutation names one user's changed
// graph and is solved as a single-user round through the session's delta
// path, which is where the cached cuts live. The solution cache and the
// journal treat the resulting decision exactly like a solved request, so
// recovery and snapshots need no special casing beyond replaying the
// delta itself.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	s.st.mutates.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyBufPool.Put(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)); err != nil {
		s.st.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%v: %v", ErrBadRequest, err))
		return
	}
	req, err := DecodeMutateRequest(bytes.NewReader(buf.Bytes()), s.cfg.Limits)
	if err != nil {
		s.st.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	params := s.cfg.Params
	if req.Params != nil {
		params = req.Params.merge(params)
	}
	if err := params.Validate(); err != nil {
		s.st.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	base := s.graphs.lookup(req.Base)
	if base == nil {
		s.st.badRequests.Add(1)
		writeError(w, http.StatusNotFound, ErrUnknownBase.Error())
		return
	}
	sreq, err := mutatedRequest(req, base, s.cfg.Limits)
	if err != nil {
		s.st.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, newFp, err := requestKey(sreq, params)
	if err != nil {
		s.st.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// A repeat mutation (same base, same delta, same params) whose decision
	// is still cached: answer without solving. The mutated graph is
	// re-interned so chained mutations keep resolving even if the solve
	// that populated the cache happened before a restart.
	if dec, _, ok := s.cache.get(key); ok {
		s.graphs.intern(newFp, sreq.Graph)
		s.st.mutateHits.Add(1)
		s.st.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, mutateResponseFor(req, newFp, dec, nil, true))
		return
	}

	var jrec []byte
	if s.cfg.Journal != nil {
		var jerr error
		if jrec, jerr = encodeMutate(req, params); jerr != nil {
			s.st.journalErrors.Add(1)
			s.logf("serve: mutate journal encode: %v", jerr)
		}
	}
	// Accept under a flight-shard lock so the draining check and the
	// accepted.Add pair with Drain's barrier, exactly as admit does; the
	// journal append is write-ahead of the solve.
	sh := s.flight.shard(key)
	sh.mu.Lock()
	if s.draining.Load() {
		sh.mu.Unlock()
		s.st.drainRejects.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	var jseg uint64
	journaled := false
	if jrec != nil {
		if seg, jerr := s.cfg.Journal.Append(jrec); jerr != nil {
			s.st.journalErrors.Add(1)
			s.logf("serve: mutate journal append: %v", jerr)
		} else {
			jseg, journaled = seg, true
		}
	}
	s.accepted.Add(1)
	sh.mu.Unlock()
	defer s.accepted.Done()

	sctx, cancel := context.WithTimeout(r.Context(), s.cfg.SolveTimeout)
	defer cancel()
	dec, ds, err := s.solveMutation(sctx, base, req, newFp, params)
	if err != nil {
		s.st.mutateErrors.Add(1)
		if journaled {
			// The journal record is released even on failure: the error is a
			// delivered response, and replaying a failing delta at every boot
			// would wedge recovery on a poison record.
			s.cfg.Journal.Applied(jseg)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			s.st.timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded solving mutation")
			return
		}
		s.st.solveErrors.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Publish ordering mirrors finish: cache fill strictly before the
	// journal release, so a snapshot that drops the record has the decision.
	s.cache.put(key, dec, renderHit(dec))
	if journaled {
		s.cfg.Journal.Applied(jseg)
	}
	s.st.deltaSolves.Add(1)
	if ds.ColdFallback {
		s.st.coldFallbacks.Add(1)
	}
	s.st.lanczosItersSaved.Add(uint64(ds.LanczosItersSaved))
	s.st.solved.Add(1)
	writeJSON(w, http.StatusOK, mutateResponseFor(req, newFp, dec, ds, false))
}

// solveMutation runs one mutate through the session's delta path and
// interns the mutated graph under newFp. The returned decision is the
// single user's, shaped exactly like a /v1/solve decision.
func (s *Server) solveMutation(ctx context.Context, base *graph.Graph, req *MutateRequest, newFp string, params mec.Params) (*Decision, *core.DeltaStats, error) {
	users := []core.UserInput{{
		FixedLocalWork: req.FixedLocalWork,
		DeviceCompute:  req.DeviceCompute,
		Bandwidth:      req.Bandwidth,
		PowerTransmit:  req.PowerTransmit,
	}}
	next, sol, ds, err := s.sess.SolveDeltaWithParams(ctx, base, req.Delta, users, core.DeltaOptions{}, params)
	if err != nil {
		return nil, nil, err
	}
	// Intern the session's mutated instance so its captured pipeline state
	// stays reachable; if the fingerprint was already interned (two clients
	// raced the same mutation), drop the loser's state with the clone.
	if canon := s.graphs.intern(newFp, next); canon != next {
		s.sess.Invalidate(next)
	}
	return decisionFor(newFp, sol, 0, 1), ds, nil
}

// mutateResponseFor assembles the wire form of one mutate outcome. ds is
// nil on a cache hit (the pipeline did not run).
func mutateResponseFor(req *MutateRequest, newFp string, dec *Decision, ds *core.DeltaStats, cached bool) MutateResponse {
	resp := MutateResponse{
		Graph:         newFp,
		Base:          req.Base,
		SolveResponse: solveResponseFor(dec, cached, false),
	}
	if ds != nil {
		resp.Incremental = ds.Incremental
		resp.ColdFallback = ds.ColdFallback
		resp.FallbackReason = ds.FallbackReason
		resp.CleanComponents = ds.CleanComponents
		resp.DirtyComponents = ds.DirtyComponents
		resp.TouchedEdges = ds.TouchedEdges
		resp.LanczosItersSaved = ds.LanczosItersSaved
	}
	return resp
}
