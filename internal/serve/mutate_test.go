package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"copmecs/internal/graph"
)

// mutateBody marshals a POST /v1/mutate body.
func mutateBody(t testing.TB, base string, d *graph.Delta) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]any{"base": base, "delta": d})
	if err != nil {
		t.Fatalf("marshal mutate body: %v", err)
	}
	return body
}

// fingerprintOf returns g's canonical fingerprint.
func fingerprintOf(t testing.TB, g *graph.Graph) string {
	t.Helper()
	fp, err := g.Fingerprint()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return fp
}

// chainGraph builds an n-node chain large enough that a one-edge delta
// stays under the incremental touched-fraction threshold.
func chainGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g := graph.New(0)
	for v := 0; v < n; v++ {
		if err := g.AddNode(graph.NodeID(v), 20+float64(v%5)*60); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	for v := 0; v+1 < n; v++ {
		if err := g.AddEdge(graph.NodeID(v), graph.NodeID(v+1), 5+float64(v%4)*20); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

// postJSON posts body to url and decodes the response into out, returning
// the status code.
func postJSON(t testing.TB, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response from %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestMutateEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := chainGraph(t, 40)
	baseFp := fingerprintOf(t, g)
	if st := postJSON(t, ts.URL+"/v1/solve", solveBody(t, g), nil); st != http.StatusOK {
		t.Fatalf("prime solve: status %d", st)
	}

	// Mutate: bump one node weight. The mutated graph must be solved and
	// published under its own fingerprint.
	mutated := g.Clone()
	d := &graph.Delta{SetNodeWeights: []graph.NodeDelta{{ID: 0, Weight: 500}}}
	if err := d.Apply(mutated); err != nil {
		t.Fatal(err)
	}
	wantFp := fingerprintOf(t, mutated)

	var mresp MutateResponse
	if st := postJSON(t, ts.URL+"/v1/mutate", mutateBody(t, baseFp, d), &mresp); st != http.StatusOK {
		t.Fatalf("mutate: status %d", st)
	}
	if mresp.Graph != wantFp {
		t.Errorf("mutate response graph = %s, want %s", mresp.Graph, wantFp)
	}
	if mresp.Base != baseFp {
		t.Errorf("mutate response base = %s, want %s", mresp.Base, baseFp)
	}
	if mresp.Cached {
		t.Error("first mutate reported cached")
	}
	// /v1/solve deliberately captures no incremental state, so the first
	// mutate against a solve-primed base is a cold capture. It still
	// answers correctly and seeds the warm path for the chained mutate.
	if !mresp.ColdFallback {
		t.Errorf("first mutate: cold_fallback=false, want cold capture (reason=%q)", mresp.FallbackReason)
	}

	// A plain solve of the mutated graph is a cache hit with the identical
	// decision — the mutate published under the same key.
	var sresp SolveResponse
	if st := postJSON(t, ts.URL+"/v1/solve", solveBody(t, mutated), &sresp); st != http.StatusOK {
		t.Fatalf("solve mutated: status %d", st)
	}
	if !sresp.Cached {
		t.Error("solve of mutated graph missed the cache")
	}
	if len(sresp.Remote) != len(mresp.Remote) {
		t.Fatalf("solve remote %v != mutate remote %v", sresp.Remote, mresp.Remote)
	}
	for i := range sresp.Remote {
		if sresp.Remote[i] != mresp.Remote[i] {
			t.Fatalf("solve remote %v != mutate remote %v", sresp.Remote, mresp.Remote)
		}
	}
	if sresp.BatchObjective != mresp.BatchObjective {
		t.Errorf("objective: solve %v, mutate %v", sresp.BatchObjective, mresp.BatchObjective)
	}

	// Chained mutation against the new fingerprint stays on the delta path.
	d2 := &graph.Delta{SetEdges: []graph.EdgeDelta{{U: 0, V: 1, Weight: 99}}}
	var mresp2 MutateResponse
	if st := postJSON(t, ts.URL+"/v1/mutate", mutateBody(t, mresp.Graph, d2), &mresp2); st != http.StatusOK {
		t.Fatalf("chained mutate: status %d", st)
	}
	if !mresp2.Incremental {
		t.Errorf("chained mutate not incremental: reason=%q", mresp2.FallbackReason)
	}

	st := s.Stats()
	if st.Incremental.Mutates != 2 || st.Incremental.DeltaSolves != 2 {
		t.Errorf("incremental stats = %+v, want 2 mutates, 2 delta solves", st.Incremental)
	}
	if st.Incremental.ColdFallbacks != 1 {
		t.Errorf("cold fallbacks = %d, want 1 (first mutate only)", st.Incremental.ColdFallbacks)
	}
	if st.Incremental.Errors != 0 {
		t.Errorf("mutate errors = %d", st.Incremental.Errors)
	}
}

func TestMutateRepeatIsCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := testGraph(t, 2)
	baseFp := fingerprintOf(t, g)
	if st := postJSON(t, ts.URL+"/v1/solve", solveBody(t, g), nil); st != http.StatusOK {
		t.Fatalf("prime solve: status %d", st)
	}
	d := &graph.Delta{SetEdges: []graph.EdgeDelta{{U: 1, V: 2, Weight: 77}}}
	body := mutateBody(t, baseFp, d)
	var first, second MutateResponse
	if st := postJSON(t, ts.URL+"/v1/mutate", body, &first); st != http.StatusOK {
		t.Fatalf("mutate: status %d", st)
	}
	if st := postJSON(t, ts.URL+"/v1/mutate", body, &second); st != http.StatusOK {
		t.Fatalf("repeat mutate: status %d", st)
	}
	if !second.Cached {
		t.Error("repeat mutate not served from cache")
	}
	if second.Graph != first.Graph {
		t.Errorf("repeat fingerprint %s != %s", second.Graph, first.Graph)
	}
	if st := s.Stats(); st.Incremental.CacheHits != 1 || st.Incremental.DeltaSolves != 1 {
		t.Errorf("incremental stats = %+v, want 1 cache hit, 1 delta solve", st.Incremental)
	}
}

func TestMutateErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := testGraph(t, 0)
	baseFp := fingerprintOf(t, g)
	if st := postJSON(t, ts.URL+"/v1/solve", solveBody(t, g), nil); st != http.StatusOK {
		t.Fatalf("prime solve: status %d", st)
	}

	get, err := http.Get(ts.URL + "/v1/mutate")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/mutate: status %d, want 405", get.StatusCode)
	}

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed json", `{"base":`, http.StatusBadRequest},
		{"unknown field", `{"base":"` + baseFp + `","delta":{},"bogus":1}`, http.StatusBadRequest},
		{"short fingerprint", `{"base":"abc","delta":{}}`, http.StatusBadRequest},
		{"no delta", `{"base":"` + baseFp + `"}`, http.StatusBadRequest},
		{"unknown base", `{"base":"` + strings.Repeat("0", 64) + `","delta":{}}`, http.StatusNotFound},
		{"missing node", `{"base":"` + baseFp + `","delta":{"remove_nodes":[424242]}}`, http.StatusBadRequest},
		{"negative weight", `{"base":"` + baseFp + `","delta":{"set_node_weights":[{"id":0,"weight":-1}]}}`, http.StatusBadRequest},
		{"negative override", `{"base":"` + baseFp + `","delta":{},"bandwidth":-2}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var eresp ErrorResponse
		if st := postJSON(t, ts.URL+"/v1/mutate", []byte(tc.body), &eresp); st != tc.status {
			t.Errorf("%s: status %d, want %d (error %q)", tc.name, st, tc.status, eresp.Error)
		}
	}
}

func TestMutateRecordRoundTripPreservesIdentity(t *testing.T) {
	params := defaultTestParams()
	params.Bandwidth *= 2
	base := chainGraph(t, 12)
	req := &MutateRequest{
		Base: fingerprintOf(t, base),
		Delta: &graph.Delta{
			SetNodeWeights: []graph.NodeDelta{{ID: 3, Weight: 123}},
			SetEdges:       []graph.EdgeDelta{{U: 5, V: 6, Weight: 42}},
		},
		FixedLocalWork: 12.5,
		DeviceCompute:  3.25,
		Bandwidth:      9,
		PowerTransmit:  0.75,
	}
	payload, err := encodeMutate(req, params)
	if err != nil {
		t.Fatalf("encodeMutate: %v", err)
	}
	got, gotParams, err := decodeMutate(payload, DecodeLimits{})
	if err != nil {
		t.Fatalf("decodeMutate: %v", err)
	}
	if gotParams != params {
		t.Fatalf("params = %+v, want %+v", gotParams, params)
	}
	if got.Base != req.Base || got.FixedLocalWork != req.FixedLocalWork ||
		got.DeviceCompute != req.DeviceCompute || got.Bandwidth != req.Bandwidth ||
		got.PowerTransmit != req.PowerTransmit {
		t.Fatalf("decoded request = %+v, want %+v", got, req)
	}
	// The decoded delta reconstructs the exact cache identity of the live
	// mutate — this is what makes journal replay indistinguishable from
	// the original request.
	live, err := mutatedRequest(req, base, DecodeLimits{})
	if err != nil {
		t.Fatalf("mutatedRequest live: %v", err)
	}
	replay, err := mutatedRequest(got, base, DecodeLimits{})
	if err != nil {
		t.Fatalf("mutatedRequest replay: %v", err)
	}
	wantKey, wantFp, err := requestKey(live, params)
	if err != nil {
		t.Fatal(err)
	}
	gotKey, gotFp, err := requestKey(replay, gotParams)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != wantKey || gotFp != wantFp {
		t.Fatalf("replayed identity (%s, %s) != live identity (%s, %s)", gotKey, gotFp, wantKey, wantFp)
	}
}

func TestDecodeMutateRejectsHostileRecords(t *testing.T) {
	params := defaultTestParams()
	oneOp := &graph.Delta{SetEdges: []graph.EdgeDelta{{U: 0, V: 1, Weight: 1}}}
	good, err := encodeMutate(&MutateRequest{Base: strings.Repeat("a", 64), Delta: oneOp}, params)
	if err != nil {
		t.Fatalf("encodeMutate: %v", err)
	}
	twoOps, err := encodeMutate(&MutateRequest{Base: strings.Repeat("a", 64), Delta: &graph.Delta{
		SetEdges: []graph.EdgeDelta{{U: 0, V: 1, Weight: 1}, {U: 1, V: 2, Weight: 1}},
	}}, params)
	if err != nil {
		t.Fatalf("encodeMutate: %v", err)
	}
	badFp, err := encodeMutate(&MutateRequest{Base: strings.Repeat("Z", 64), Delta: oneOp}, params)
	if err != nil {
		t.Fatalf("encodeMutate: %v", err)
	}
	// Fingerprint length prefix pointing past the payload.
	liar := append([]byte{}, good...)
	liar[1+9*8] = 0xff
	liar[1+9*8+1] = 0xff
	// Valid header and fingerprint, garbage where the delta JSON belongs.
	garbage := append(append([]byte{}, good[:1+9*8+4+64]...), []byte("not json")...)
	// Non-finite params.
	nan := append([]byte{}, good...)
	for i := 1; i <= 8; i++ {
		nan[i] = 0xff
	}

	cases := map[string]struct {
		payload []byte
		limits  DecodeLimits
	}{
		"empty":           {payload: nil},
		"wrong type":      {payload: []byte{recDecision, 0, 0, 0}},
		"truncated":       {payload: good[:20]},
		"fp length lie":   {payload: liar},
		"delta garbage":   {payload: garbage},
		"bad fingerprint": {payload: badFp},
		"nan params":      {payload: nan},
		"over ops limit":  {payload: twoOps, limits: DecodeLimits{MaxEdges: 1}},
	}
	for name, tc := range cases {
		if _, _, err := decodeMutate(tc.payload, tc.limits); err == nil {
			t.Errorf("%s: decodeMutate accepted it", name)
		}
	}
}

func TestJournalReplayReconstructsMutatedGraphs(t *testing.T) {
	// A journal tail with a solve, a mutate of that graph, a chained
	// mutate of the mutated graph, and a mutate naming a base this server
	// never saw. Recovery must rebuild both mutated graphs and serve the
	// final one warm; the orphan counts as a replay error, not a crash.
	params := defaultTestParams()
	base := chainGraph(t, 24)
	recSolve, err := encodeAccepted(&SolveRequest{Graph: base}, params)
	if err != nil {
		t.Fatalf("encodeAccepted: %v", err)
	}
	d1 := &graph.Delta{SetNodeWeights: []graph.NodeDelta{{ID: 2, Weight: 321}}}
	recMut1, err := encodeMutate(&MutateRequest{Base: fingerprintOf(t, base), Delta: d1}, params)
	if err != nil {
		t.Fatalf("encodeMutate: %v", err)
	}
	mutated := base.Clone()
	if err := d1.Apply(mutated); err != nil {
		t.Fatal(err)
	}
	d2 := &graph.Delta{SetEdges: []graph.EdgeDelta{{U: 7, V: 8, Weight: 63}}}
	recMut2, err := encodeMutate(&MutateRequest{Base: fingerprintOf(t, mutated), Delta: d2}, params)
	if err != nil {
		t.Fatalf("encodeMutate: %v", err)
	}
	orphan, err := encodeMutate(&MutateRequest{Base: strings.Repeat("0", 64), Delta: d1}, params)
	if err != nil {
		t.Fatalf("encodeMutate: %v", err)
	}

	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rs := s.Recover(ctx, nil, [][]byte{recSolve, recMut1, recMut2, orphan})
	if rs.JournalRecords != 4 {
		t.Fatalf("JournalRecords = %d, want 4", rs.JournalRecords)
	}
	if rs.ReplayMutates != 2 {
		t.Fatalf("ReplayMutates = %d, want 2", rs.ReplayMutates)
	}
	if rs.ReplaySolved != 3 {
		t.Fatalf("ReplaySolved = %d, want 3", rs.ReplaySolved)
	}
	if rs.ReplayErrors != 1 {
		t.Fatalf("ReplayErrors = %d, want 1 (the orphan base)", rs.ReplayErrors)
	}
	if rs.DecodeErrors != 0 {
		t.Fatalf("DecodeErrors = %d, want 0", rs.DecodeErrors)
	}

	// The final chained graph answers from cache without a solve.
	s.Start(ctx)
	final := mutated.Clone()
	if err := d2.Apply(final); err != nil {
		t.Fatal(err)
	}
	rec := postRecorded(s, solveBody(t, final), ctx)
	if rec.Code != http.StatusOK {
		t.Fatalf("replayed chained graph: status %d", rec.Code)
	}
	var resp SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if !resp.Cached {
		t.Fatal("replayed chained mutate was not served from cache")
	}
}

func TestStatsIncrementalSectionShape(t *testing.T) {
	// The incremental section is always present (zeros before any mutate)
	// and carries the documented keys — the CI serve job and the loadgen
	// mutate scenario assert on them.
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	inc, ok := doc["incremental"].(map[string]any)
	if !ok {
		t.Fatalf("incremental section missing: %v", doc["incremental"])
	}
	for _, key := range []string{
		"mutates", "cache_hits", "delta_solves", "cold_fallbacks",
		"lanczos_iters_saved", "errors",
	} {
		v, ok := inc[key]
		if !ok {
			t.Fatalf("incremental field %q missing", key)
		}
		if v.(float64) != 0 {
			t.Errorf("incremental field %q = %v before any mutate, want 0", key, v)
		}
	}
}

// TestSolveResponseChainsToMutate pins the handle flow a client actually
// uses: the /v1/solve response carries the graph's fingerprint, and that
// string works verbatim as the base of a follow-up /v1/mutate — no
// client-side fingerprint computation required.
func TestSolveResponseChainsToMutate(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := chainGraph(t, 40)
	var sresp SolveResponse
	if st := postJSON(t, ts.URL+"/v1/solve", solveBody(t, g), &sresp); st != http.StatusOK {
		t.Fatalf("solve: status %d", st)
	}
	if want := fingerprintOf(t, g); sresp.Graph != want {
		t.Fatalf("solve response graph = %q, want %q", sresp.Graph, want)
	}

	d := &graph.Delta{SetNodeWeights: []graph.NodeDelta{{ID: 1, Weight: 333}}}
	var mresp MutateResponse
	if st := postJSON(t, ts.URL+"/v1/mutate", mutateBody(t, sresp.Graph, d), &mresp); st != http.StatusOK {
		t.Fatalf("mutate via solve-returned handle: status %d", st)
	}
	if mresp.Base != sresp.Graph {
		t.Errorf("mutate base = %q, want %q", mresp.Base, sresp.Graph)
	}
	// The cached repeat must carry the fingerprint too (pre-rendered hit
	// bytes are built from the same decision).
	var again SolveResponse
	if st := postJSON(t, ts.URL+"/v1/solve", solveBody(t, g), &again); st != http.StatusOK {
		t.Fatalf("repeat solve: status %d", st)
	}
	if !again.Cached || again.Graph != sresp.Graph {
		t.Errorf("repeat solve cached=%v graph=%q, want cached=true graph=%q", again.Cached, again.Graph, sresp.Graph)
	}
}
