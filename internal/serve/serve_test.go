package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"copmecs/internal/core"
	"copmecs/internal/graph"
	"copmecs/internal/mec"
)

// defaultTestParams returns the paper's default system constants.
func defaultTestParams() mec.Params { return mec.Defaults() }

// testGraph builds the i-th of a family of small distinct chain graphs:
// 4+i nodes with i-dependent weights, so every index yields a different
// fingerprint and a nontrivial cut.
func testGraph(t testing.TB, i int) *graph.Graph {
	t.Helper()
	n := 4 + i%4
	g := graph.New(0)
	for v := 0; v < n; v++ {
		if err := g.AddNode(graph.NodeID(v), 20+float64((v+i)%5)*60); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	for v := 0; v+1 < n; v++ {
		if err := g.AddEdge(graph.NodeID(v), graph.NodeID(v+1), 5+float64((v*i)%4)*20); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

// solveBody marshals a POST /v1/solve body for g.
func solveBody(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]any{"graph": g})
	if err != nil {
		t.Fatalf("marshal body: %v", err)
	}
	return body
}

// newTestServer builds (but does not Start) a Server with test-friendly
// timeouts on top of cfg.
func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(Config{Params: mec.Params{ServerCapacity: -1}}); err == nil {
		t.Fatal("New accepted negative ServerCapacity")
	}
}

func TestHandlerMethodsAndErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		method, path string
		body         string
		want         int
	}{
		{http.MethodGet, "/v1/solve", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/healthz", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/stats", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/solve", "not json", http.StatusBadRequest},
		{http.MethodPost, "/v1/solve", `{}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/solve", `{"graph":{"nodes":[{"id":0,"weight":1}],"edges":[]},"params":{"server_capacity":-3}}`, http.StatusBadRequest},
		{http.MethodGet, "/v1/healthz", "", http.StatusOK},
		{http.MethodGet, "/v1/stats", "", http.StatusOK},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("NewRequest: %v", err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s (body %q) = %d, want %d", tc.method, tc.path, tc.body, resp.StatusCode, tc.want)
		}
	}
	if st := s.Stats(); st.BadRequests != 3 {
		t.Errorf("BadRequests = %d, want 3", st.BadRequests)
	}
}

func TestHandlerParamsOverrideTooBigGraph(t *testing.T) {
	s := newTestServer(t, Config{Limits: DecodeLimits{MaxNodes: 2}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
		bytes.NewReader(solveBody(t, testGraph(t, 0)))) // 4 nodes > limit 2
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if !strings.Contains(e.Error, "too large") {
		t.Fatalf("error = %q, want a too-large message", e.Error)
	}
}

func TestHandlerShedsWhenQueueFull(t *testing.T) {
	// Single lane, batcher never started: fill the lane's ring directly
	// (a ring holds at least two tasks), then every leader admission must
	// shed with 429 + Retry-After.
	s := newTestServer(t, Config{QueueDepth: 1, BatchLanes: 1, RetryAfter: 2 * time.Second})
	for i := 0; s.b.enqueue(&solveTask{p: newPending(fmt.Sprintf("occupier%d", i))}); i++ {
		if i > 1024 {
			t.Fatal("lane ring never filled")
		}
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
		bytes.NewReader(solveBody(t, testGraph(t, 1))))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}
}

func TestHandlerTimeoutWithoutBatcher(t *testing.T) {
	// Accepted but never dispatched (batcher not started): the request's own
	// deadline fires and maps to 504.
	s := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
		bytes.NewReader(solveBody(t, testGraph(t, 2))))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", st.Timeouts)
	}
}

func TestServeSolveAndCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := testGraph(t, 3)
	post := func() SolveResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
			bytes.NewReader(solveBody(t, g)))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		var sr SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return sr
	}

	first := post()
	if first.Cached {
		t.Fatal("first request reported cached")
	}
	if got, want := first.LocalWork+first.RemoteWork, g.TotalNodeWeight(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("local+remote work = %v, want total node weight %v", got, want)
	}
	for _, id := range first.Remote {
		if !g.HasNode(id) {
			t.Fatalf("decision offloads unknown node %d", id)
		}
	}

	second := post()
	if !second.Cached {
		t.Fatal("repeat request missed the cache")
	}
	if !reflect.DeepEqual(first.Remote, second.Remote) || second.LocalWork != first.LocalWork {
		t.Fatalf("cached decision differs: %+v vs %+v", first, second)
	}
	st := s.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Size != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if st.Solved != 2 || st.Requests != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Latency.Count != 2 {
		t.Fatalf("latency count = %d, want 2", st.Latency.Count)
	}
}

func TestDrainRejectsAndCompletes(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One request through, then drain.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
		bytes.NewReader(solveBody(t, testGraph(t, 4))))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()

	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}

	// New solve requests and health checks now answer 503.
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json",
		bytes.NewReader(solveBody(t, testGraph(t, 5))))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain solve status = %d, want 503", resp.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz = %d, want 503", hr.StatusCode)
	}
	if st := s.Stats(); st.DrainRejects != 1 || !st.Draining {
		t.Fatalf("stats after drain = %+v", st)
	}

	// Drain is idempotent.
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestBatchedContentionMatchesOffline drives dispatchRound directly with
// deterministic rounds and checks that every decision matches an offline
// core.Solve over the identical user list — the serving path must not change
// the paper's model, only feed it with live batches.
func TestBatchedContentionMatchesOffline(t *testing.T) {
	params := defaultTestParams()
	for _, roundSize := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("users=%d", roundSize), func(t *testing.T) {
			s := newTestServer(t, Config{Workers: 1})
			ctx := context.Background()

			tasks := make([]*solveTask, roundSize)
			var users []core.UserInput
			for i := range tasks {
				u := core.UserInput{Graph: testGraph(t, i)}
				tasks[i] = &solveTask{
					p:      newPending(fmt.Sprintf("k%d", i)),
					user:   u,
					params: params,
					pkey:   paramsDigest(params),
					fp:     fmt.Sprintf("fp%d", i),
				}
				users = append(users, u)
			}
			s.accepted.Add(roundSize)
			s.dispatchRound(ctx, tasks)

			want, err := core.Solve(ctx, users, core.Options{Params: params, Workers: 1})
			if err != nil {
				t.Fatalf("offline Solve: %v", err)
			}
			for i, task := range tasks {
				select {
				case <-task.p.done:
				default:
					t.Fatalf("task %d not resolved", i)
				}
				if task.p.err != nil {
					t.Fatalf("task %d: %v", i, task.p.err)
				}
				got := task.p.dec
				wantDec := decisionFor(fmt.Sprintf("fp%d", i), want, i, roundSize)
				if !reflect.DeepEqual(got, wantDec) {
					t.Errorf("user %d decision differs\n got: %+v\nwant: %+v", i, got, wantDec)
				}
				if got.BatchUsers != roundSize {
					t.Errorf("user %d BatchUsers = %d, want %d", i, got.BatchUsers, roundSize)
				}
			}
			if got := want.Eval.ActiveUsers; tasks[0].p.dec.ActiveUsers != got {
				t.Errorf("ActiveUsers = %d, want %d", tasks[0].p.dec.ActiveUsers, got)
			}
		})
	}
}

// TestFusedRoundCounters checks the fusion telemetry: a round spanning two
// distinct graphs counts as one fused round of two graphs, while a
// single-graph round (nothing to merge) leaves both counters alone.
func TestFusedRoundCounters(t *testing.T) {
	params := defaultTestParams()
	s := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	mkTask := func(key string, gi int) *solveTask {
		return &solveTask{
			p:      newPending(key),
			user:   core.UserInput{Graph: testGraph(t, gi)},
			params: params,
			pkey:   paramsDigest(params),
		}
	}
	s.accepted.Add(2)
	s.dispatchRound(ctx, []*solveTask{mkTask("a", 0), mkTask("b", 1)})
	if got := s.st.fusedRounds.Load(); got != 1 {
		t.Fatalf("fusedRounds after 2-graph round = %d, want 1", got)
	}
	if got := s.st.fusedGraphs.Load(); got != 2 {
		t.Fatalf("fusedGraphs after 2-graph round = %d, want 2", got)
	}

	s.accepted.Add(1)
	s.dispatchRound(ctx, []*solveTask{mkTask("c", 2)})
	if got := s.st.fusedRounds.Load(); got != 1 {
		t.Fatalf("fusedRounds after 1-graph round = %d, want 1 still", got)
	}
	if got := s.st.fusedGraphs.Load(); got != 2 {
		t.Fatalf("fusedGraphs after 1-graph round = %d, want 2 still", got)
	}
}

// TestContentionGrowsWithBatch checks the paper's processor-sharing model is
// visible through the serving path: the same user's waiting time is
// monotonically non-decreasing in the number of co-batched offloading users.
func TestContentionGrowsWithBatch(t *testing.T) {
	params := defaultTestParams()
	params.DeviceCompute = 20 // weak devices: offloading always wins, so k grows with the batch
	probe := testGraph(t, 0)

	var lastWait float64
	var lastK int
	for _, extra := range []int{0, 3, 7} {
		s := newTestServer(t, Config{Workers: 1, Params: params})
		tasks := []*solveTask{{
			p:      newPending("probe"),
			user:   core.UserInput{Graph: probe},
			params: params,
			pkey:   paramsDigest(params),
		}}
		for i := 0; i < extra; i++ {
			tasks = append(tasks, &solveTask{
				p:      newPending(fmt.Sprintf("bg%d", i)),
				user:   core.UserInput{Graph: testGraph(t, 1+i)},
				params: params,
				pkey:   paramsDigest(params),
			})
		}
		s.accepted.Add(len(tasks))
		s.dispatchRound(context.Background(), tasks)

		dec := tasks[0].p.dec
		if tasks[0].p.err != nil || dec == nil {
			t.Fatalf("round of %d: %v", len(tasks), tasks[0].p.err)
		}
		if dec.ActiveUsers < lastK {
			t.Fatalf("ActiveUsers fell from %d to %d with a bigger batch", lastK, dec.ActiveUsers)
		}
		if dec.RemoteWork > 0 && dec.ActiveUsers > lastK && dec.Cost.WaitTime < lastWait {
			t.Fatalf("wait time fell from %v to %v as k grew to %d",
				lastWait, dec.Cost.WaitTime, dec.ActiveUsers)
		}
		lastWait, lastK = dec.Cost.WaitTime, dec.ActiveUsers
	}
	if lastK < 2 {
		t.Fatalf("final round had k = %d; contention never materialised", lastK)
	}
	if lastWait == 0 {
		t.Fatal("probe user never waited despite a scarce shared server")
	}
}

// TestSingleflightMultiplicityCountsTowardContention: duplicates collapsed
// onto one in-flight cell must still contend — a round with live
// multiplicity m solves as m users, not 1.
func TestSingleflightMultiplicityCountsTowardContention(t *testing.T) {
	params := defaultTestParams()
	params.DeviceCompute = 20
	s := newTestServer(t, Config{Workers: 1, Params: params})

	task := &solveTask{
		p:      newPending("dup"),
		user:   core.UserInput{Graph: testGraph(t, 0)},
		params: params,
		pkey:   paramsDigest(params),
	}
	task.p.mult.Add(4) // leader + 4 followers
	s.accepted.Add(1)
	s.dispatchRound(context.Background(), []*solveTask{task})

	dec := task.p.dec
	if task.p.err != nil || dec == nil {
		t.Fatalf("solve: %v", task.p.err)
	}
	if dec.BatchUsers != 5 {
		t.Fatalf("BatchUsers = %d, want 5 (multiplicity expansion)", dec.BatchUsers)
	}
	if dec.RemoteWork > 0 && dec.ActiveUsers != 5 {
		t.Fatalf("ActiveUsers = %d, want 5", dec.ActiveUsers)
	}
	if dec.RemoteWork > 0 && dec.Cost.WaitTime == 0 {
		t.Fatal("five contending twins but zero wait time")
	}
	if st := s.Stats(); st.Batch.Users != 5 || st.Batch.MaxUsers != 5 {
		t.Fatalf("batch stats = %+v", st.Batch)
	}
}

// slowEngine delays each cut so rounds stay in flight long enough for the
// integration test's duplicate requests to collapse onto them
// deterministically rather than racing the solver.
type slowEngine struct {
	delay time.Duration
	inner core.Engine
}

func (e slowEngine) Name() string { return e.inner.Name() }

func (e slowEngine) Bisect(ctx context.Context, g *graph.Graph) ([]graph.NodeID, []graph.NodeID, error) {
	select {
	case <-time.After(e.delay):
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
	return e.inner.Bisect(ctx, g)
}

// TestIntegrationConcurrentClients is the acceptance test: 64 concurrent
// clients with duplicate graphs against a running server. Every client gets
// a valid decision or a 429; duplicates collapse; repeats hit the cache; and
// a drain concurrent with a second wave loses no accepted request.
func TestIntegrationConcurrentClients(t *testing.T) {
	s := newTestServer(t, Config{
		Engine:     slowEngine{delay: 10 * time.Millisecond, inner: core.SpectralEngine{}},
		MaxBatch:   8,
		BatchWait:  10 * time.Millisecond,
		QueueDepth: 64,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 64
	const distinct = 8 // 8 distinct graphs → 8 duplicates of each
	bodies := make([][]byte, distinct)
	graphs := make([]*graph.Graph, distinct)
	for i := range bodies {
		graphs[i] = testGraph(t, i)
		bodies[i] = solveBody(t, graphs[i])
	}

	type result struct {
		status int
		resp   SolveResponse
	}
	run := func(n int) []result {
		t.Helper()
		results := make([]result, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
					bytes.NewReader(bodies[i%distinct]))
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				defer resp.Body.Close()
				results[i].status = resp.StatusCode
				if resp.StatusCode == http.StatusOK {
					if err := json.NewDecoder(resp.Body).Decode(&results[i].resp); err != nil {
						t.Errorf("client %d: decode: %v", i, err)
					}
				}
			}(i)
		}
		wg.Wait()
		return results
	}

	// Wave 1: every request must resolve to a valid decision or a shed.
	for i, r := range run(clients) {
		switch r.status {
		case http.StatusOK:
			g := graphs[i%distinct]
			if got, want := r.resp.LocalWork+r.resp.RemoteWork, g.TotalNodeWeight(); math.Abs(got-want) > 1e-9 {
				t.Errorf("client %d: local+remote = %v, want %v", i, got, want)
			}
			for _, id := range r.resp.Remote {
				if !g.HasNode(id) {
					t.Errorf("client %d: decision names unknown node %d", i, id)
				}
			}
		case http.StatusTooManyRequests:
			// Shed under pressure is a valid outcome.
		default:
			t.Errorf("client %d: status %d, want 200 or 429", i, r.status)
		}
	}
	st := s.Stats()
	if st.Deduped == 0 {
		t.Error("64 clients over 8 graphs produced zero singleflight collapses")
	}
	if st.Requests != clients {
		t.Errorf("Requests = %d, want %d", st.Requests, clients)
	}
	// Losslessness: every accepted request resolved one way or another.
	if st.Solved+st.Shed+st.Timeouts+st.SolveErrors != clients {
		t.Errorf("accounting leak: solved %d + shed %d + timeouts %d + errors %d != %d",
			st.Solved, st.Shed, st.Timeouts, st.SolveErrors, clients)
	}

	// Wave 2 (sequential): all cache hits now.
	for i := 0; i < distinct; i++ {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(bodies[i]))
		if err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
		var sr SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("repeat %d: decode: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !sr.Cached {
			t.Fatalf("repeat %d: status %d cached=%v, want a cache hit", i, resp.StatusCode, sr.Cached)
		}
	}
	if st := s.Stats(); st.Cache.Hits == 0 {
		t.Error("cache hit count = 0 after repeat wave")
	}

	// Wave 3: drain concurrent with traffic. Every response must be 200,
	// 429 or 503, and the books must still balance — no accepted request
	// may be lost.
	var wg sync.WaitGroup
	wave3 := make([]int, 32)
	for i := range wave3 {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := solveBody(t, testGraph(t, 100+i)) // fresh graphs: no cache shortcut
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("wave3 client %d: %v", i, err)
				return
			}
			resp.Body.Close()
			wave3[i] = resp.StatusCode
		}(i)
	}
	time.Sleep(time.Millisecond) // let some of the wave be accepted first
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for i, code := range wave3 {
		if code != http.StatusOK && code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable {
			t.Errorf("wave3 client %d: status %d", i, code)
		}
	}
	final := s.Stats()
	if !final.Draining {
		t.Error("server not draining after Drain")
	}
	if final.Solved+final.Shed+final.DrainRejects+final.Timeouts+final.SolveErrors != final.Requests {
		t.Errorf("post-drain accounting leak: %+v", final)
	}
	if final.InFlight != 0 {
		t.Errorf("InFlight = %d after drain, want 0", final.InFlight)
	}
}

func BenchmarkServeSolveDistinct(b *testing.B) {
	s := newTestServer(b, Config{CacheSize: 16})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 64 distinct bodies cycled round-robin: with a 16-entry cache most
	// requests miss and exercise the full batch+solve path.
	bodies := make([][]byte, 64)
	for i := range bodies {
		bodies[i] = solveBody(b, testGraph(b, i))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
				bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				b.Fatalf("status %d", resp.StatusCode)
			}
			i++
		}
	})
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(float64(st.Batch.Users)/float64(st.Batch.Rounds+1), "users/round")
}

func BenchmarkServeSolveCached(b *testing.B) {
	s := newTestServer(b, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := solveBody(b, testGraph(b, 0))
	warm, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	warm.Body.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}
