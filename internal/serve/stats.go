package serve

import (
	"sync/atomic"
	"time"
)

// padUint64 is an atomic.Uint64 padded out to its own cache line.
// Request-path counters live in one counters struct; without padding,
// cores bumping different counters would false-share lines and the
// "lock-free" stats would still serialize in the cache-coherence
// protocol. 56 bytes of tail padding after the 8-byte value gives each
// counter a 64-byte line to itself.
type padUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// Add atomically adds delta.
func (p *padUint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// Load atomically reads the value.
func (p *padUint64) Load() uint64 { return p.v.Load() }

// padInt64 is an atomic.Int64 padded out to its own cache line (see
// padUint64).
type padInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// Add atomically adds delta.
func (p *padInt64) Add(delta int64) int64 { return p.v.Add(delta) }

// Load atomically reads the value.
func (p *padInt64) Load() int64 { return p.v.Load() }

// latencyBoundsMs are the upper bounds (milliseconds) of the request
// latency histogram buckets; a final implicit +Inf bucket catches the rest.
var latencyBoundsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// histogram is a fixed-bucket latency histogram with lock-free padded
// atomic counters. observe is wait-free (three atomic adds); snapshot
// reads each bucket atomically without any lock, so a snapshot taken
// during a storm is a per-counter-atomic view — total, sum and buckets
// may be mutually skewed by in-flight observations, but every value is a
// real count that was current when read (no torn reads, no lock
// convoy on the cold stats path stalling the hot path).
type histogram struct {
	counts [numLatencyBuckets]padUint64
	count  padUint64
	sumUs  padUint64 // total microseconds
}

// numLatencyBuckets sizes the bucket array: one per entry of
// latencyBoundsMs plus the +Inf bucket (asserted in stats tests).
const numLatencyBuckets = 13

// observe records one request duration.
func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBoundsMs) && ms > latencyBoundsMs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(uint64(d / time.Microsecond))
}

// HistogramBucket is one cumulative latency bucket in a Stats snapshot.
type HistogramBucket struct {
	// LE is the bucket's inclusive upper bound in milliseconds; the last
	// bucket has LE = 0 and represents +Inf.
	LE float64 `json:"le"`
	// Count is the cumulative number of observations ≤ LE.
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the JSON rendering of the latency histogram.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// MeanMs is the mean latency in milliseconds (0 when empty).
	MeanMs float64 `json:"mean_ms"`
	// Buckets are the cumulative buckets, smallest bound first.
	Buckets []HistogramBucket `json:"buckets"`
}

// snapshot renders the histogram with cumulative bucket counts. Each
// counter is read atomically; no lock is held across the iteration.
func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	if s.Count > 0 {
		s.MeanMs = float64(h.sumUs.Load()) / 1000 / float64(s.Count)
	}
	var cum uint64
	for i := 0; i < numLatencyBuckets; i++ {
		cum += h.counts[i].Load()
		le := 0.0 // +Inf sentinel
		if i < len(latencyBoundsMs) {
			le = latencyBoundsMs[i]
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LE: le, Count: cum})
	}
	return s
}

// counters aggregates the server's monotonic event counts and gauges.
// Request-path counters (bumped on every /v1/solve) are cache-line padded
// atomics; round-path counters (batches, batchedUsers, maxBatch) are
// bumped only by the single dispatch goroutine and stay plain atomics.
type counters struct {
	requests      padUint64 // POST /v1/solve arrivals
	solved        padUint64 // 200 responses (cached or fresh)
	badRequests   padUint64 // 400 responses
	shed          padUint64 // 429 responses (queue full)
	drainRejects  padUint64 // 503 responses while draining
	deduped       padUint64 // requests collapsed onto an in-flight twin
	cacheHits     padUint64
	cacheMisses   padUint64
	bodyHits      padUint64 // cache hits resolved by raw-body digest (no decode)
	solveErrors   padUint64
	timeouts      padUint64 // 504 responses
	rateLimited   padUint64 // 429 responses from the MaxQPS admission cap
	journalErrors padUint64 // accepted requests served without a journal record
	inFlight      padInt64  // requests currently inside /v1/solve
	lat           histogram

	// Incremental re-solve counters (POST /v1/mutate).
	mutates           padUint64 // /v1/mutate arrivals
	mutateHits        padUint64 // mutates answered from the solution cache
	deltaSolves       padUint64 // mutates solved through Session.SolveDelta
	coldFallbacks     padUint64 // delta solves that fell back to the cold pipeline
	lanczosItersSaved padUint64 // Lanczos iterations replayed instead of re-run
	mutateErrors      padUint64 // mutate solve failures (500/504 responses)

	batches      atomic.Uint64 // solve rounds dispatched
	batchedUsers atomic.Uint64 // users across all rounds (incl. multiplicity)
	maxBatch     atomic.Uint64 // largest round seen
	fusedRounds  atomic.Uint64 // rounds whose BatchSolve fused >= 2 distinct graphs
	fusedGraphs  atomic.Uint64 // distinct graphs across those fused rounds
}

// observeBatch records one dispatched round of n users.
func (c *counters) observeBatch(n int) {
	c.batches.Add(1)
	c.batchedUsers.Add(uint64(n))
	for {
		cur := c.maxBatch.Load()
		if uint64(n) <= cur || c.maxBatch.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

// ShardOccupancy is one shard's fill level in a sharded-table snapshot.
type ShardOccupancy struct {
	// Size is the shard's current entry count.
	Size int `json:"size"`
	// Capacity is the shard's configured maximum entry count.
	Capacity int `json:"capacity"`
}

// CacheStats is the solution-cache section of a Stats snapshot.
type CacheStats struct {
	// Hits counts requests answered straight from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts requests that went to the solver.
	Misses uint64 `json:"misses"`
	// BodyHits counts the subset of Hits resolved by the raw-body digest
	// fast path, i.e. without JSON decoding or graph hashing.
	BodyHits uint64 `json:"body_hits"`
	// Size is the current entry count.
	Size int `json:"size"`
	// Capacity is the configured maximum entry count.
	Capacity int `json:"capacity"`
	// Evictions counts LRU evictions.
	Evictions uint64 `json:"evictions"`
	// Shards is the per-shard occupancy; a skewed distribution means the
	// key space is pathological for the prefix shard function.
	Shards []ShardOccupancy `json:"shards"`
}

// GraphCacheStats is the graph-intern section of a Stats snapshot: how
// often repeat request graphs were rewritten to their canonical instance
// (and therefore hit the session's pipeline cache instead of re-running
// compression and cuts).
type GraphCacheStats struct {
	// Size is the number of distinct graphs currently interned.
	Size int `json:"size"`
	// Capacity is the configured maximum number of interned graphs.
	Capacity int `json:"capacity"`
	// Reused counts requests rewritten to an already-interned graph.
	Reused uint64 `json:"reused"`
	// Evictions counts graphs dropped (with their pipeline state) by LRU.
	Evictions uint64 `json:"evictions"`
	// Pipelines is the number of graphs with compiled pipeline state in
	// the session (≤ Size; a graph enters on its first solved round).
	Pipelines int `json:"pipelines"`
	// Shards is the per-shard occupancy of the intern table.
	Shards []ShardOccupancy `json:"shards"`
}

// LaneStats is one batcher lane in a Stats snapshot.
type LaneStats struct {
	// Depth is the number of tasks currently queued in the lane.
	Depth int `json:"depth"`
	// Capacity is the lane ring's slot count.
	Capacity int `json:"capacity"`
	// Enqueued counts tasks accepted into the lane.
	Enqueued uint64 `json:"enqueued"`
	// Rejected counts pushes refused because the lane was full (each one
	// became a 429).
	Rejected uint64 `json:"rejected"`
}

// BatchStats is the micro-batcher section of a Stats snapshot.
type BatchStats struct {
	// Rounds counts dispatched solve rounds.
	Rounds uint64 `json:"rounds"`
	// Users counts users solved across all rounds, including the live
	// multiplicity of singleflight-collapsed duplicates.
	Users uint64 `json:"users"`
	// MaxUsers is the largest round dispatched.
	MaxUsers uint64 `json:"max_users"`
	// FusedRounds counts rounds whose BatchSolve pass fused two or more
	// distinct application graphs into one mega-instance. Rounds over a
	// single graph (or served entirely from the pipeline cache) gain
	// nothing from fusion and are not counted.
	FusedRounds uint64 `json:"fused_rounds"`
	// FusedGraphs counts the distinct graphs across all fused rounds —
	// FusedGraphs/FusedRounds is the mean fusion width.
	FusedGraphs uint64 `json:"fused_graphs"`
	// QueueDepth is the number of requests currently queued across lanes.
	QueueDepth int `json:"queue_depth"`
	// Lanes is the per-lane queue state; persistent skew means one
	// application's fingerprint dominates the traffic.
	Lanes []LaneStats `json:"lanes"`
}

// IncrementalStats is the incremental re-solve section of a Stats
// snapshot: what POST /v1/mutate did with the delta-patched pipeline.
type IncrementalStats struct {
	// Mutates counts POST /v1/mutate arrivals.
	Mutates uint64 `json:"mutates"`
	// CacheHits counts mutates answered from the solution cache (the
	// mutated graph's decision was already published).
	CacheHits uint64 `json:"cache_hits"`
	// DeltaSolves counts mutates solved through the session's delta path
	// (incremental or cold-fallback — ColdFallbacks separates them).
	DeltaSolves uint64 `json:"delta_solves"`
	// ColdFallbacks counts delta solves that abandoned the incremental
	// pipeline (no cached base state, or the delta's touched-edge fraction
	// exceeded the threshold) and re-solved from scratch.
	ColdFallbacks uint64 `json:"cold_fallbacks"`
	// LanczosItersSaved totals the recorded eigensolver iterations of
	// replayed (untouched) components — spectral work the incremental path
	// avoided re-running.
	LanczosItersSaved uint64 `json:"lanczos_iters_saved"`
	// Errors counts mutate solve failures.
	Errors uint64 `json:"errors"`
}

// Stats is the JSON document served at GET /v1/stats.
type Stats struct {
	// Requests counts POST /v1/solve arrivals.
	Requests uint64 `json:"requests"`
	// Solved counts 200 responses (cached or freshly solved).
	Solved uint64 `json:"solved"`
	// BadRequests counts 400 responses.
	BadRequests uint64 `json:"bad_requests"`
	// Shed counts 429 responses from admission control (full queue).
	Shed uint64 `json:"shed"`
	// RateLimited counts 429 responses from the MaxQPS admission cap,
	// shed before the request body was read. Disjoint from Shed.
	RateLimited uint64 `json:"rate_limited"`
	// DrainRejects counts 503 responses issued while draining.
	DrainRejects uint64 `json:"drain_rejects"`
	// Deduped counts requests collapsed onto an identical in-flight one.
	Deduped uint64 `json:"deduped"`
	// SolveErrors counts solver-side failures (500 responses).
	SolveErrors uint64 `json:"solve_errors"`
	// Timeouts counts requests that hit their deadline (504 responses).
	Timeouts uint64 `json:"timeouts"`
	// InFlight is the number of requests currently being served.
	InFlight int64 `json:"in_flight"`
	// Draining reports whether the server has begun graceful drain.
	Draining bool `json:"draining"`
	// Cache is the solution-cache section.
	Cache CacheStats `json:"cache"`
	// GraphCache is the graph-intern / session pipeline-reuse section.
	GraphCache GraphCacheStats `json:"graph_cache"`
	// Batch is the micro-batcher section.
	Batch BatchStats `json:"batch"`
	// Incremental is the /v1/mutate incremental re-solve section.
	Incremental IncrementalStats `json:"incremental"`
	// Latency is the end-to-end /v1/solve latency histogram.
	Latency HistogramSnapshot `json:"latency_ms"`
	// Durability is the journal/snapshot/recovery section; nil (omitted)
	// when the server runs purely in memory, so the flat fields and the
	// existing sections are byte-identical to a durability-free build.
	Durability *DurabilityStats `json:"durability,omitempty"`
}
