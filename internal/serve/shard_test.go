package serve

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"copmecs/internal/graph"
)

func TestShardCountFor(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1},       // capacity 1 must stay a single exact-LRU shard
		{7, 1},       // below minShardEntries per extra shard
		{16, 2},      // 2 shards × 8 entries
		{64, 8},      //
		{128, 16},    // hits maxTableShards
		{100000, 16}, // capped
		{0, 1},       // degenerate
		{-3, 1},      // degenerate
	}
	for _, c := range cases {
		if got := shardCountFor(c.capacity); got != c.want {
			t.Fatalf("shardCountFor(%d) = %d, want %d", c.capacity, got, c.want)
		}
		if got := shardCountFor(c.capacity); got&(got-1) != 0 {
			t.Fatalf("shardCountFor(%d) = %d is not a power of two", c.capacity, got)
		}
	}
}

func TestShardPrefixSpreads(t *testing.T) {
	// Hex sha256 keys (the cache's real key shape) must spread across 16
	// shards without pathological skew.
	const n, shards = 4096, 16
	counts := make([]int, shards)
	for i := 0; i < n; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		key := fmt.Sprintf("%x", sum)
		counts[shardPrefix(key)&(shards-1)]++
	}
	for i, c := range counts {
		// Perfectly uniform is n/shards = 256; allow a generous ±60%.
		if c < n/shards*2/5 || c > n/shards*8/5 {
			t.Fatalf("shard %d holds %d of %d keys; distribution too skewed: %v", i, c, n, counts)
		}
	}
}

func TestShardPrefixDeterministic(t *testing.T) {
	for _, key := range []string{"", "a", "0123456789abcdef0123456789abcdef"} {
		if shardPrefix(key) != shardPrefix(key) {
			t.Fatalf("shardPrefix(%q) not deterministic", key)
		}
	}
}

func TestShardedCacheCapacityOneIsExactLRU(t *testing.T) {
	// CacheSize 1 must behave as a single-entry LRU (one shard), matching
	// the unsharded behaviour tests elsewhere rely on.
	c := newShardedCache(1)
	if len(c.shards) != 1 {
		t.Fatalf("shards = %d for capacity 1, want 1", len(c.shards))
	}
	c.put("a", &Decision{LocalWork: 1}, nil)
	c.put("b", &Decision{LocalWork: 2}, nil)
	if _, _, ok := c.get("a"); ok {
		t.Fatal("capacity-1 cache kept two entries")
	}
	if _, _, ok := c.get("b"); !ok {
		t.Fatal("capacity-1 cache lost its newest entry")
	}
	if c.evicted() != 1 {
		t.Fatalf("evictions = %d, want 1", c.evicted())
	}
}

func TestShardedCacheSpreadsAndAggregates(t *testing.T) {
	c := newShardedCache(DefaultCacheSize)
	if len(c.shards) != maxTableShards {
		t.Fatalf("shards = %d, want %d", len(c.shards), maxTableShards)
	}
	const n = 512
	hit := []byte("{}\n")
	for i := 0; i < n; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("k%d", i)))
		c.put(fmt.Sprintf("%x", sum), &Decision{LocalWork: float64(i)}, hit)
	}
	if got := c.len(); got != n {
		t.Fatalf("aggregate len = %d, want %d", got, n)
	}
	occ := c.occupancy()
	if len(occ) != maxTableShards {
		t.Fatalf("occupancy shards = %d, want %d", len(occ), maxTableShards)
	}
	total, populated := 0, 0
	for _, o := range occ {
		total += o.Size
		if o.Size > 0 {
			populated++
		}
		if o.Capacity <= 0 {
			t.Fatal("shard reports non-positive capacity")
		}
	}
	if total != n {
		t.Fatalf("occupancy total = %d, want %d", total, n)
	}
	if populated < maxTableShards/2 {
		t.Fatalf("only %d shards populated by %d hashed keys", populated, n)
	}
	// Round-trip one key, pre-rendered bytes included.
	sum := sha256.Sum256([]byte("k7"))
	key := fmt.Sprintf("%x", sum)
	dec, b, ok := c.get(key)
	if !ok || dec.LocalWork != 7 || string(b) != "{}\n" {
		t.Fatalf("get(k7) = %+v, %q, %v", dec, b, ok)
	}
}

func TestShardedInternCapacityOneIsExactLRU(t *testing.T) {
	// GraphCacheSize 1 (used by the pipeline-release test) must keep the
	// single-shard exact-LRU behaviour: a second fingerprint evicts the
	// first regardless of which shard each key would hash to.
	var evicted []*graph.Graph
	c := newShardedIntern(1, func(g *graph.Graph) { evicted = append(evicted, g) })
	if len(c.shards) != 1 {
		t.Fatalf("shards = %d for capacity 1, want 1", len(c.shards))
	}
	g1, g2 := testGraph(t, 0), testGraph(t, 1)
	c.intern("a", g1)
	c.intern("b", g2)
	if len(evicted) != 1 || evicted[0] != g1 {
		t.Fatalf("evicted %v, want [g1]", evicted)
	}
	if c.len() != 1 || c.evictedCount() != 1 {
		t.Fatalf("len = %d, evictions = %d, want 1, 1", c.len(), c.evictedCount())
	}
}

func TestShardedInternAggregates(t *testing.T) {
	c := newShardedIntern(DefaultGraphCacheSize, nil)
	g := testGraph(t, 0)
	for i := 0; i < 32; i++ {
		sum := sha256.Sum256([]byte{byte(i)})
		c.intern(fmt.Sprintf("%x", sum), g)
	}
	if c.len() != 32 {
		t.Fatalf("len = %d, want 32", c.len())
	}
	sum := sha256.Sum256([]byte{3})
	if got := c.intern(fmt.Sprintf("%x", sum), testGraph(t, 1)); got != g {
		t.Fatal("repeat fingerprint did not return the canonical instance")
	}
	if c.reusedCount() != 1 {
		t.Fatalf("reused = %d, want 1", c.reusedCount())
	}
	total := 0
	for _, o := range c.occupancy() {
		total += o.Size
	}
	if total != 32 {
		t.Fatalf("occupancy total = %d, want 32", total)
	}
	if c.capacity() < DefaultGraphCacheSize {
		t.Fatalf("aggregate capacity = %d, want ≥ %d", c.capacity(), DefaultGraphCacheSize)
	}
}

func TestBodyCacheRoundTripAndEviction(t *testing.T) {
	c := newBodyCache(2)
	d1 := sha256.Sum256([]byte("body-1"))
	d2 := sha256.Sum256([]byte("body-2"))
	d3 := sha256.Sum256([]byte("body-3"))
	if _, ok := c.get(d1); ok {
		t.Fatal("empty body cache reported a hit")
	}
	c.put(d1, requestIdentity{key: "k1", fp: "f1"})
	c.put(d2, requestIdentity{key: "k2", fp: "f2"})
	if id, ok := c.get(d1); !ok || id.key != "k1" || id.fp != "f1" {
		t.Fatalf("get(d1) = %+v, %v", id, ok)
	}
	// d1 was just touched; d3 must evict d2 from d2's shard — with a
	// capacity this small there is one shard, so eviction is exact LRU.
	c.put(d3, requestIdentity{key: "k3", fp: "f3"})
	if c.len() > 2 {
		t.Fatalf("len = %d exceeds capacity 2", c.len())
	}
}
