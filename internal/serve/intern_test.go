package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"copmecs/internal/graph"
)

func TestGraphInternCanonicalises(t *testing.T) {
	var evicted []*graph.Graph
	c := newGraphIntern(2, func(g *graph.Graph) { evicted = append(evicted, g) })

	g1, g2, g3 := testGraph(t, 0), testGraph(t, 1), testGraph(t, 2)
	if got := c.intern("a", g1); got != g1 {
		t.Fatal("first intern did not install the given graph")
	}
	// A content-equal decode must come back as the first instance.
	if got := c.intern("a", testGraph(t, 0)); got != g1 {
		t.Fatal("repeat fingerprint did not return the canonical instance")
	}
	if c.reused.Load() != 1 || c.len() != 1 {
		t.Fatalf("reused = %d, len = %d, want 1, 1", c.reused.Load(), c.len())
	}

	c.intern("b", g2)
	c.intern("c", g3) // capacity 2: evicts "a" (LRU)
	if len(evicted) != 1 || evicted[0] != g1 {
		t.Fatalf("evicted %v, want [g1]", evicted)
	}
	if c.evictions.Load() != 1 || c.len() != 2 {
		t.Fatalf("evictions = %d, len = %d, want 1, 2", c.evictions.Load(), c.len())
	}
	// "a" is gone: interning it again installs the new instance.
	fresh := testGraph(t, 0)
	if got := c.intern("a", fresh); got != fresh {
		t.Fatal("evicted fingerprint still returned the old instance")
	}
}

// postSolveWithCapacity posts g with a per-request server_capacity override
// and fails the test on any non-200 outcome.
func postSolveWithCapacity(t *testing.T, url string, g *graph.Graph, capacity float64) SolveResponse {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"graph":  g,
		"params": map[string]any{"server_capacity": capacity},
	})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var sr SolveResponse
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return sr
}

func TestSessionPipelineReusedAcrossParams(t *testing.T) {
	s := newTestServer(t, Config{BatchWait: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Same graph content (fresh decode each request), different system
	// parameters: distinct solution-cache keys, so both requests reach the
	// solver — but the second must reuse the first's compiled pipeline.
	g := testGraph(t, 5)
	first := postSolveWithCapacity(t, ts.URL, g, 900)
	second := postSolveWithCapacity(t, ts.URL, g, 1800)
	if first.Cached || second.Cached {
		t.Fatal("distinct params unexpectedly hit the solution cache")
	}
	if s.sess.CachedGraphs() != 1 {
		t.Fatalf("CachedGraphs = %d, want 1 (pipeline not shared)", s.sess.CachedGraphs())
	}
	st := s.Stats()
	if st.GraphCache.Size != 1 || st.GraphCache.Reused != 1 || st.GraphCache.Pipelines != 1 {
		t.Fatalf("graph cache stats = %+v, want size 1, reused 1, pipelines 1", st.GraphCache)
	}
	// Doubling capacity must not worsen the objective-relevant split: both
	// decisions come from the same pipeline, only the greedy differs.
	if first.LocalWork+first.RemoteWork != second.LocalWork+second.RemoteWork {
		t.Fatalf("total work drifted across params: %v vs %v",
			first.LocalWork+first.RemoteWork, second.LocalWork+second.RemoteWork)
	}
}

func TestGraphInternEvictionReleasesPipeline(t *testing.T) {
	s := newTestServer(t, Config{GraphCacheSize: 1, BatchWait: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postSolveWithCapacity(t, ts.URL, testGraph(t, 1), 900)
	postSolveWithCapacity(t, ts.URL, testGraph(t, 2), 900) // evicts graph 1
	if got := s.sess.CachedGraphs(); got != 1 {
		t.Fatalf("CachedGraphs = %d, want 1 (eviction must release pipeline state)", got)
	}
	st := s.Stats()
	if st.GraphCache.Size != 1 || st.GraphCache.Evictions != 1 {
		t.Fatalf("graph cache stats = %+v, want size 1, evictions 1", st.GraphCache)
	}
}
