package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"copmecs/internal/graph"
)

// DefaultGraphCacheSize is the default graph-intern capacity (distinct
// graphs whose solver pipeline state is kept warm).
const DefaultGraphCacheSize = 256

// graphIntern is a fixed-capacity LRU mapping canonical graph fingerprints
// to one representative *graph.Graph instance. Decoded request graphs with
// the same content are rewritten to the interned pointer before solving, so
// the core.Session's identity-keyed pipeline cache hits for repeat graphs
// even though every HTTP request decodes a fresh allocation. Eviction runs
// onEvict with the dropped instance so the owner can release the session
// state pinned by it. Safe for concurrent use.
type graphIntern struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recent
	items     map[string]*list.Element
	onEvict   func(*graph.Graph)
	reused    atomic.Uint64
	evictions atomic.Uint64
}

// internEntry is one intern slot.
type internEntry struct {
	fp string
	g  *graph.Graph
}

// newGraphIntern returns an intern table holding at most capacity graphs
// (≤ 0 means DefaultGraphCacheSize). onEvict may be nil.
func newGraphIntern(capacity int, onEvict func(*graph.Graph)) *graphIntern {
	if capacity <= 0 {
		capacity = DefaultGraphCacheSize
	}
	return &graphIntern{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element, capacity),
		onEvict: onEvict,
	}
}

// intern returns the canonical instance for fingerprint fp, installing g as
// that instance when fp is new and evicting the least-recently-used graph
// past capacity. The interned graph must never be mutated.
func (c *graphIntern) intern(fp string, g *graph.Graph) *graph.Graph {
	var evicted *graph.Graph
	c.mu.Lock()
	if el, ok := c.items[fp]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.reused.Add(1)
		return el.Value.(*internEntry).g
	}
	c.items[fp] = c.ll.PushFront(&internEntry{fp: fp, g: g})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		ent := oldest.Value.(*internEntry)
		delete(c.items, ent.fp)
		evicted = ent.g
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	if evicted != nil && c.onEvict != nil {
		c.onEvict(evicted)
	}
	return g
}

// lookup returns the canonical instance for fingerprint fp, or nil when
// fp is not interned. A hit counts as a use for LRU purposes.
func (c *graphIntern) lookup(fp string) *graph.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*internEntry).g
	}
	return nil
}

// len reports the current entry count.
func (c *graphIntern) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// dump visits every interned graph oldest-to-newest (so re-interning the
// stream reproduces this table's LRU recency). Entries are copied under
// the lock and fn runs outside it — interned graphs are immutable; fn
// returning false stops the walk.
func (c *graphIntern) dump(fn func(fp string, g *graph.Graph) bool) bool {
	c.mu.Lock()
	type kv struct {
		fp string
		g  *graph.Graph
	}
	ents := make([]kv, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*internEntry)
		ents = append(ents, kv{fp: ent.fp, g: ent.g})
	}
	c.mu.Unlock()
	for _, e := range ents {
		if !fn(e.fp, e.g) {
			return false
		}
	}
	return true
}

// shardedIntern spreads the graph-intern table over
// shardCountFor(capacity) graphIntern shards selected by fingerprint
// prefix, so concurrent interning of different applications never
// contends on one mutex. Fingerprints are canonical per graph content, so
// a graph always lands in the same shard and canonicalisation still holds
// globally; eviction is exact LRU within the owning shard.
type shardedIntern struct {
	shards []*graphIntern
	mask   uint32
}

// newShardedIntern returns a sharded intern table with total capacity
// graphs (≤ 0 means DefaultGraphCacheSize). onEvict may be nil.
func newShardedIntern(capacity int, onEvict func(*graph.Graph)) *shardedIntern {
	if capacity <= 0 {
		capacity = DefaultGraphCacheSize
	}
	n := shardCountFor(capacity)
	per := (capacity + n - 1) / n
	c := &shardedIntern{shards: make([]*graphIntern, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i] = newGraphIntern(per, onEvict)
	}
	return c
}

// intern returns the canonical instance for fingerprint fp via fp's shard.
func (c *shardedIntern) intern(fp string, g *graph.Graph) *graph.Graph {
	return c.shards[shardPrefix(fp)&c.mask].intern(fp, g)
}

// lookup returns the canonical instance for fingerprint fp via fp's
// shard, or nil when fp is not interned.
func (c *shardedIntern) lookup(fp string) *graph.Graph {
	return c.shards[shardPrefix(fp)&c.mask].lookup(fp)
}

// len reports the aggregate entry count across shards.
func (c *shardedIntern) len() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.len()
	}
	return n
}

// capacity reports the aggregate configured capacity across shards.
func (c *shardedIntern) capacity() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.cap
	}
	return n
}

// dump visits every interned graph shard by shard, oldest-to-newest
// within each shard (see graphIntern.dump); fn returning false stops.
func (c *shardedIntern) dump(fn func(fp string, g *graph.Graph) bool) {
	for _, sh := range c.shards {
		if !sh.dump(fn) {
			return
		}
	}
}

// reusedCount reports the aggregate reuse count across shards.
func (c *shardedIntern) reusedCount() uint64 {
	var n uint64
	for _, sh := range c.shards {
		n += sh.reused.Load()
	}
	return n
}

// evictedCount reports the aggregate eviction count across shards.
func (c *shardedIntern) evictedCount() uint64 {
	var n uint64
	for _, sh := range c.shards {
		n += sh.evictions.Load()
	}
	return n
}

// occupancy reports per-shard size and capacity for /v1/stats.
func (c *shardedIntern) occupancy() []ShardOccupancy {
	occ := make([]ShardOccupancy, len(c.shards))
	for i, sh := range c.shards {
		occ[i] = ShardOccupancy{Size: sh.len(), Capacity: sh.cap}
	}
	return occ
}
