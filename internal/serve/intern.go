package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"copmecs/internal/graph"
)

// DefaultGraphCacheSize is the default graph-intern capacity (distinct
// graphs whose solver pipeline state is kept warm).
const DefaultGraphCacheSize = 256

// graphIntern is a fixed-capacity LRU mapping canonical graph fingerprints
// to one representative *graph.Graph instance. Decoded request graphs with
// the same content are rewritten to the interned pointer before solving, so
// the core.Session's identity-keyed pipeline cache hits for repeat graphs
// even though every HTTP request decodes a fresh allocation. Eviction runs
// onEvict with the dropped instance so the owner can release the session
// state pinned by it. Safe for concurrent use.
type graphIntern struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recent
	items     map[string]*list.Element
	onEvict   func(*graph.Graph)
	reused    atomic.Uint64
	evictions atomic.Uint64
}

// internEntry is one intern slot.
type internEntry struct {
	fp string
	g  *graph.Graph
}

// newGraphIntern returns an intern table holding at most capacity graphs
// (≤ 0 means DefaultGraphCacheSize). onEvict may be nil.
func newGraphIntern(capacity int, onEvict func(*graph.Graph)) *graphIntern {
	if capacity <= 0 {
		capacity = DefaultGraphCacheSize
	}
	return &graphIntern{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element, capacity),
		onEvict: onEvict,
	}
}

// intern returns the canonical instance for fingerprint fp, installing g as
// that instance when fp is new and evicting the least-recently-used graph
// past capacity. The interned graph must never be mutated.
func (c *graphIntern) intern(fp string, g *graph.Graph) *graph.Graph {
	var evicted *graph.Graph
	c.mu.Lock()
	if el, ok := c.items[fp]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.reused.Add(1)
		return el.Value.(*internEntry).g
	}
	c.items[fp] = c.ll.PushFront(&internEntry{fp: fp, g: g})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		ent := oldest.Value.(*internEntry)
		delete(c.items, ent.fp)
		evicted = ent.g
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	if evicted != nil && c.onEvict != nil {
		c.onEvict(evicted)
	}
	return g
}

// len reports the current entry count.
func (c *graphIntern) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
