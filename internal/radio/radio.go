// Package radio models the wireless uplinks between users and the edge
// server. The paper assumes a uniform bandwidth b "for the simplicity of
// discussion"; real MEC deployments see per-user rates spread over an order
// of magnitude with distance and fading. This package derives per-user
// bandwidths from a standard narrowband link budget — log-distance path
// loss plus Shannon capacity — so experiments can exercise the solver's
// heterogeneous-radio support with physically plausible spreads.
//
// The model is deliberately simple (no fast fading, no interference
// coordination): it exists to generate defensible heterogeneity, not to
// simulate a radio access network.
package radio

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadParams is returned for non-positive model parameters.
var ErrBadParams = errors.New("radio: invalid parameters")

// Params describes the cell and the link-budget constants.
type Params struct {
	// CellRadius is the maximum user distance from the server (meters).
	CellRadius float64
	// ReferenceRate is the data rate (in the model's data units per second)
	// at ReferenceDistance with unit SNR margin — it anchors the Shannon
	// curve to the solver's abstract bandwidth units.
	ReferenceRate float64
	// ReferenceDistance is where the reference SNR is measured (meters).
	ReferenceDistance float64
	// PathLossExponent is the log-distance exponent (2 = free space,
	// 3–4 = urban). Higher values spread user rates wider.
	PathLossExponent float64
	// ReferenceSNR is the linear signal-to-noise ratio at the reference
	// distance.
	ReferenceSNR float64
	// TransmitPowerPerRate is the radio energy per data unit sent; exposed
	// so placements can also carry a power override. Zero disables it.
	TransmitPowerPerRate float64
}

// DefaultParams returns a small urban cell: 200 m radius, path-loss
// exponent 3.2, and a reference rate chosen so a mid-cell user lands near
// the solver's default bandwidth of 200 units/s.
func DefaultParams() Params {
	return Params{
		CellRadius:        200,
		ReferenceRate:     60,
		ReferenceDistance: 10,
		PathLossExponent:  3.2,
		ReferenceSNR:      1000, // 30 dB at 10 m
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.CellRadius <= 0:
		return fmt.Errorf("%w: cell radius %g", ErrBadParams, p.CellRadius)
	case p.ReferenceRate <= 0:
		return fmt.Errorf("%w: reference rate %g", ErrBadParams, p.ReferenceRate)
	case p.ReferenceDistance <= 0:
		return fmt.Errorf("%w: reference distance %g", ErrBadParams, p.ReferenceDistance)
	case p.PathLossExponent < 1:
		return fmt.Errorf("%w: path loss exponent %g", ErrBadParams, p.PathLossExponent)
	case p.ReferenceSNR <= 0:
		return fmt.Errorf("%w: reference SNR %g", ErrBadParams, p.ReferenceSNR)
	}
	return nil
}

// SNRAt returns the linear SNR at the given distance under log-distance
// path loss: SNR(d) = SNR₀ · (d₀/d)^γ. Distances inside the reference
// distance clamp to the reference SNR (near-field).
func (p Params) SNRAt(distance float64) float64 {
	if distance <= p.ReferenceDistance {
		return p.ReferenceSNR
	}
	return p.ReferenceSNR * math.Pow(p.ReferenceDistance/distance, p.PathLossExponent)
}

// RateAt returns the Shannon-shaped data rate at the given distance:
// rate = ReferenceRate · log₂(1 + SNR(d)). The reference rate calibrates
// the (abstract) spectral bandwidth.
func (p Params) RateAt(distance float64) float64 {
	return p.ReferenceRate * math.Log2(1+p.SNRAt(distance))
}

// Link is one user's radio situation.
type Link struct {
	// Distance from the edge server (meters).
	Distance float64
	// SNR is the linear signal-to-noise ratio at that distance.
	SNR float64
	// Bandwidth is the achievable uplink rate (solver data units/second).
	Bandwidth float64
	// PowerTransmit is the per-data-unit radio energy (0 when the model's
	// TransmitPowerPerRate is unset).
	PowerTransmit float64
}

// PlaceUsers draws n user positions uniformly over the cell disk (area-
// uniform, so the density is constant per m²) and returns their links,
// deterministically for a given seed.
func PlaceUsers(p Params, n int, seed int64) ([]Link, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("%w: %d users", ErrBadParams, n)
	}
	rng := rand.New(rand.NewSource(seed))
	links := make([]Link, n)
	for i := range links {
		// Area-uniform radius: r = R·√u.
		d := p.CellRadius * math.Sqrt(rng.Float64())
		links[i] = p.LinkAt(d)
	}
	return links, nil
}

// LinkAt returns the link for a user at the given distance.
func (p Params) LinkAt(distance float64) Link {
	l := Link{
		Distance:  distance,
		SNR:       p.SNRAt(distance),
		Bandwidth: p.RateAt(distance),
	}
	if p.TransmitPowerPerRate > 0 {
		// Poorer links burn more energy per unit of data: inversely
		// proportional to achievable rate, anchored at the reference.
		l.PowerTransmit = p.TransmitPowerPerRate * p.RateAt(p.ReferenceDistance) / l.Bandwidth
	}
	return l
}
