package radio

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	base := DefaultParams()
	cases := []func(*Params){
		func(p *Params) { p.CellRadius = 0 },
		func(p *Params) { p.ReferenceRate = -1 },
		func(p *Params) { p.ReferenceDistance = 0 },
		func(p *Params) { p.PathLossExponent = 0.5 },
		func(p *Params) { p.ReferenceSNR = 0 },
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: Validate = %v, want ErrBadParams", i, err)
		}
	}
	if _, err := PlaceUsers(Params{}, 3, 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("PlaceUsers with zero params error = %v", err)
	}
	if _, err := PlaceUsers(base, -1, 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative users error = %v", err)
	}
}

func TestSNRMonotoneInDistance(t *testing.T) {
	p := DefaultParams()
	prev := math.Inf(1)
	for d := 1.0; d <= p.CellRadius; d += 5 {
		snr := p.SNRAt(d)
		if snr > prev+1e-12 {
			t.Fatalf("SNR increased with distance at %vm", d)
		}
		prev = snr
	}
	// Near-field clamp.
	if p.SNRAt(p.ReferenceDistance/2) != p.ReferenceSNR {
		t.Errorf("near-field SNR not clamped")
	}
}

func TestRateShannonShape(t *testing.T) {
	p := DefaultParams()
	// At the reference distance: rate = ref · log2(1 + SNR₀).
	want := p.ReferenceRate * math.Log2(1+p.ReferenceSNR)
	if got := p.RateAt(p.ReferenceDistance); math.Abs(got-want) > 1e-9 {
		t.Errorf("RateAt(ref) = %v, want %v", got, want)
	}
	// Rates decrease with distance but stay positive across the cell.
	edge := p.RateAt(p.CellRadius)
	if edge <= 0 {
		t.Errorf("edge rate %v not positive", edge)
	}
	if edge >= p.RateAt(p.ReferenceDistance) {
		t.Errorf("edge rate %v not below near rate", edge)
	}
}

func TestPlaceUsersDeterministicAndBounded(t *testing.T) {
	p := DefaultParams()
	a, err := PlaceUsers(p, 200, 7)
	if err != nil {
		t.Fatalf("PlaceUsers: %v", err)
	}
	b, err := PlaceUsers(p, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d differs between identical seeds", i)
		}
		if a[i].Distance < 0 || a[i].Distance > p.CellRadius {
			t.Errorf("user %d outside cell: %v", i, a[i].Distance)
		}
		if a[i].Bandwidth <= 0 {
			t.Errorf("user %d nonpositive bandwidth", i)
		}
	}
	c, err := PlaceUsers(p, 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical placements")
	}
}

func TestPowerOverrideScalesInversely(t *testing.T) {
	p := DefaultParams()
	p.TransmitPowerPerRate = 2
	near := p.LinkAt(p.ReferenceDistance)
	far := p.LinkAt(p.CellRadius)
	if near.PowerTransmit <= 0 || far.PowerTransmit <= near.PowerTransmit {
		t.Errorf("power not inversely scaled: near %v, far %v",
			near.PowerTransmit, far.PowerTransmit)
	}
	// Anchor: at the reference distance, power = TransmitPowerPerRate.
	if math.Abs(near.PowerTransmit-2) > 1e-9 {
		t.Errorf("reference power = %v, want 2", near.PowerTransmit)
	}
	noPower := DefaultParams()
	if noPower.LinkAt(50).PowerTransmit != 0 {
		t.Error("power set despite zero TransmitPowerPerRate")
	}
}

func TestPropertyFartherIsSlower(t *testing.T) {
	f := func(seedA, seedB uint16) bool {
		p := DefaultParams()
		d1 := 1 + float64(seedA)/65535*(p.CellRadius-1)
		d2 := 1 + float64(seedB)/65535*(p.CellRadius-1)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return p.RateAt(d1) >= p.RateAt(d2)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
