package mec

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"copmecs/internal/graph"
)

const tol = 1e-10

func almostEqual(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestFormulas(t *testing.T) {
	if got := LocalTime(200, 100); got != 2 {
		t.Errorf("LocalTime = %v, want 2", got)
	}
	if got := LocalTime(200, 0); got != 0 {
		t.Errorf("LocalTime(zero device) = %v, want 0", got)
	}
	if got := RemoteTime(300, 100, 5); got != 8 {
		t.Errorf("RemoteTime = %v, want 8", got)
	}
	if got := RemoteTime(300, 0, 5); got != 5 {
		t.Errorf("RemoteTime(zero share) = %v, want 5", got)
	}
	if got := LocalEnergy(2, 3); got != 6 {
		t.Errorf("LocalEnergy = %v, want 6", got)
	}
	if got := TransmissionEnergy(100, 6, 200); got != 3 {
		t.Errorf("TransmissionEnergy = %v, want 3", got)
	}
	if got := TransmissionTime(100, 200); got != 0.5 {
		t.Errorf("TransmissionTime = %v, want 0.5", got)
	}
	if got := TransmissionEnergy(100, 6, 0); got != 0 {
		t.Errorf("TransmissionEnergy(zero bw) = %v, want 0", got)
	}
	if got := TransmissionTime(100, 0); got != 0 {
		t.Errorf("TransmissionTime(zero bw) = %v, want 0", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Errorf("Defaults invalid: %v", err)
	}
	bad := []Params{
		{ServerCapacity: 0, DeviceCompute: 1, PowerCompute: 1, PowerTransmit: 1, Bandwidth: 1},
		{ServerCapacity: 1, DeviceCompute: -1, PowerCompute: 1, PowerTransmit: 1, Bandwidth: 1},
		{ServerCapacity: 1, DeviceCompute: 1, PowerCompute: 0, PowerTransmit: 1, Bandwidth: 1},
		{ServerCapacity: 1, DeviceCompute: 1, PowerCompute: 1, PowerTransmit: 0, Bandwidth: 1},
		{ServerCapacity: 1, DeviceCompute: 1, PowerCompute: 1, PowerTransmit: 1, Bandwidth: -9},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: Validate = %v, want ErrBadParams", i, err)
		}
		if _, err := Evaluate(p, nil); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: Evaluate = %v, want ErrBadParams", i, err)
		}
	}
}

func TestEvaluateAllLocal(t *testing.T) {
	p := Defaults()
	users := []UserState{{LocalWork: 200}, {LocalWork: 300}}
	ev, err := Evaluate(p, users)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if ev.ActiveUsers != 0 {
		t.Errorf("ActiveUsers = %d, want 0", ev.ActiveUsers)
	}
	wantLocalT := 200.0/p.DeviceCompute + 300.0/p.DeviceCompute
	if !almostEqual(ev.LocalTime, wantLocalT) {
		t.Errorf("LocalTime = %v, want %v", ev.LocalTime, wantLocalT)
	}
	if ev.TransmissionEnergy != 0 || ev.RemoteTime != 0 || ev.WaitTime != 0 {
		t.Errorf("all-local has remote costs: %+v", ev)
	}
	if !almostEqual(ev.Energy, ev.LocalEnergy) {
		t.Errorf("Energy = %v, want %v", ev.Energy, ev.LocalEnergy)
	}
	if !almostEqual(ev.Objective, ev.Energy+ev.Time) {
		t.Errorf("Objective = %v, want E+T = %v", ev.Objective, ev.Energy+ev.Time)
	}
}

func TestEvaluateProcessorSharing(t *testing.T) {
	p := Params{ServerCapacity: 100, DeviceCompute: 10, PowerCompute: 1, PowerTransmit: 5, Bandwidth: 50}
	users := []UserState{
		{RemoteWork: 100, CutWeight: 10},
		{RemoteWork: 200, CutWeight: 20},
		{LocalWork: 50}, // inactive at the server
	}
	ev, err := Evaluate(p, users)
	if err != nil {
		t.Fatal(err)
	}
	if ev.ActiveUsers != 2 {
		t.Fatalf("ActiveUsers = %d, want 2", ev.ActiveUsers)
	}
	// share = 50; user0: ts = 100/50 = 2, of which wait = 2 − 1 = 1.
	u0 := ev.PerUser[0]
	if !almostEqual(u0.ServerShare, 50) {
		t.Errorf("share = %v, want 50", u0.ServerShare)
	}
	if !almostEqual(u0.RemoteTime, 2) {
		t.Errorf("user0 RemoteTime = %v, want 2", u0.RemoteTime)
	}
	if !almostEqual(u0.WaitTime, 1) {
		t.Errorf("user0 WaitTime = %v, want 1", u0.WaitTime)
	}
	// Formula (2) decomposition: ts = remote/capacity + wait.
	if !almostEqual(u0.RemoteTime, 100.0/100+u0.WaitTime) {
		t.Errorf("formula (2) decomposition broken: %+v", u0)
	}
	// Transmission for user1: et = 20·5/50 = 2; tt = 0.4.
	u1 := ev.PerUser[1]
	if !almostEqual(u1.TransmissionEnergy, 2) || !almostEqual(u1.TransmissionTime, 0.4) {
		t.Errorf("user1 transmission = %+v", u1)
	}
	// Inactive user pays no server costs.
	u2 := ev.PerUser[2]
	if u2.RemoteTime != 0 || u2.WaitTime != 0 || u2.ServerShare != 0 {
		t.Errorf("inactive user has server costs: %+v", u2)
	}
}

func TestEvaluateContentionGrows(t *testing.T) {
	// Adding more offloading users must increase each user's remote time
	// (the paper's overload argument).
	p := Defaults()
	mk := func(k int) float64 {
		users := make([]UserState, k)
		for i := range users {
			users[i] = UserState{RemoteWork: 500}
		}
		ev, err := Evaluate(p, users)
		if err != nil {
			t.Fatal(err)
		}
		return ev.PerUser[0].RemoteTime
	}
	t1, t4, t16 := mk(1), mk(4), mk(16)
	if !(t1 < t4 && t4 < t16) {
		t.Errorf("remote time not increasing with load: %v %v %v", t1, t4, t16)
	}
}

func TestEvaluateDeviceOverride(t *testing.T) {
	p := Defaults()
	ev, err := Evaluate(p, []UserState{
		{LocalWork: 100},
		{LocalWork: 100, DeviceCompute: p.DeviceCompute * 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ev.PerUser[0].LocalTime, 2*ev.PerUser[1].LocalTime) {
		t.Errorf("device override not applied: %+v", ev.PerUser)
	}
}

func buildGraph(t *testing.T, weights []float64, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g := graph.New(len(weights))
	for i, w := range weights {
		if err := g.AddNode(graph.NodeID(i), w); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestPlacementState(t *testing.T) {
	g := buildGraph(t, []float64{5, 4, 3, 2, 1}, []graph.Edge{
		{U: 0, V: 1, Weight: 10}, {U: 0, V: 2, Weight: 8},
		{U: 1, V: 3, Weight: 12}, {U: 1, V: 4, Weight: 7},
	})
	pl := Placement{Graph: g, Remote: map[graph.NodeID]bool{1: true, 3: true, 4: true}}
	st := pl.State()
	if st.LocalWork != 8 { // nodes 0 and 2
		t.Errorf("LocalWork = %v, want 8", st.LocalWork)
	}
	if st.RemoteWork != 7 { // nodes 1, 3, 4
		t.Errorf("RemoteWork = %v, want 7", st.RemoteWork)
	}
	if st.CutWeight != 10 { // only edge {0,1} crosses
		t.Errorf("CutWeight = %v, want 10", st.CutWeight)
	}
}

func TestEvaluatePlacements(t *testing.T) {
	g := buildGraph(t, []float64{100, 200}, []graph.Edge{{U: 0, V: 1, Weight: 50}})
	p := Defaults()
	ev, err := EvaluatePlacements(p, []Placement{
		{Graph: g, Remote: map[graph.NodeID]bool{1: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.ActiveUsers != 1 {
		t.Errorf("ActiveUsers = %d, want 1", ev.ActiveUsers)
	}
	if !almostEqual(ev.LocalTime, 100/p.DeviceCompute) {
		t.Errorf("LocalTime = %v", ev.LocalTime)
	}
	if !almostEqual(ev.TransmissionEnergy, 50*p.PowerTransmit/p.Bandwidth) {
		t.Errorf("TransmissionEnergy = %v", ev.TransmissionEnergy)
	}
}

func TestPropertyEvaluateNonNegativeAndAdditive(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		k := int(kk%20) + 1
		users := make([]UserState, k)
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(uint16(s>>32)) / 65535 * 1000
		}
		for i := range users {
			users[i] = UserState{LocalWork: next(), RemoteWork: next(), CutWeight: next()}
		}
		ev, err := Evaluate(Defaults(), users)
		if err != nil {
			return false
		}
		if ev.Energy < 0 || ev.Time < 0 || ev.Objective < 0 {
			return false
		}
		// Aggregates equal the per-user sums.
		var le, te, lt, rt, tt float64
		for _, c := range ev.PerUser {
			le += c.LocalEnergy
			te += c.TransmissionEnergy
			lt += c.LocalTime
			rt += c.RemoteTime
			tt += c.TransmissionTime
		}
		return almostEqual(le, ev.LocalEnergy) && almostEqual(te, ev.TransmissionEnergy) &&
			almostEqual(lt, ev.LocalTime) && almostEqual(rt, ev.RemoteTime) &&
			almostEqual(tt, ev.TransmissionTime) &&
			almostEqual(ev.Objective, ev.Energy+ev.Time)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyOffloadEverythingVsNothing(t *testing.T) {
	// With transmission far more expensive than computing and a slow server
	// share, keeping everything local beats offloading everything when the
	// cut is large — and vice versa for free cuts on a fast server. This
	// pins the balance behaviour the paper's §III motivates.
	p := Params{ServerCapacity: 10000, DeviceCompute: 10, PowerCompute: 1, PowerTransmit: 50, Bandwidth: 10}
	heavyCut := []UserState{{RemoteWork: 100, CutWeight: 1000}}
	allLocal := []UserState{{LocalWork: 100}}
	evR, err := Evaluate(p, heavyCut)
	if err != nil {
		t.Fatal(err)
	}
	evL, err := Evaluate(p, allLocal)
	if err != nil {
		t.Fatal(err)
	}
	if evR.Objective <= evL.Objective {
		t.Errorf("heavy-cut offload %v should lose to local %v", evR.Objective, evL.Objective)
	}
	freeCut := []UserState{{RemoteWork: 100, CutWeight: 0}}
	evF, err := Evaluate(p, freeCut)
	if err != nil {
		t.Fatal(err)
	}
	if evF.Objective >= evL.Objective {
		t.Errorf("free-cut offload %v should beat local %v", evF.Objective, evL.Objective)
	}
}

func TestEvaluateRadioOverrides(t *testing.T) {
	p := Defaults()
	ev, err := Evaluate(p, []UserState{
		{RemoteWork: 10, CutWeight: 100},
		{RemoteWork: 10, CutWeight: 100, Bandwidth: p.Bandwidth / 2},
		{RemoteWork: 10, CutWeight: 100, PowerTransmit: p.PowerTransmit * 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := ev.PerUser[0]
	halfBW := ev.PerUser[1]
	triplePT := ev.PerUser[2]
	if !almostEqual(halfBW.TransmissionTime, 2*base.TransmissionTime) {
		t.Errorf("half bandwidth tx time = %v, want %v", halfBW.TransmissionTime, 2*base.TransmissionTime)
	}
	if !almostEqual(halfBW.TransmissionEnergy, 2*base.TransmissionEnergy) {
		t.Errorf("half bandwidth tx energy = %v, want %v", halfBW.TransmissionEnergy, 2*base.TransmissionEnergy)
	}
	if !almostEqual(triplePT.TransmissionEnergy, 3*base.TransmissionEnergy) {
		t.Errorf("triple power tx energy = %v, want %v", triplePT.TransmissionEnergy, 3*base.TransmissionEnergy)
	}
	if !almostEqual(triplePT.TransmissionTime, base.TransmissionTime) {
		t.Errorf("power override changed tx time: %v vs %v", triplePT.TransmissionTime, base.TransmissionTime)
	}
}

func TestPlacementStateCarriesOverrides(t *testing.T) {
	g := buildGraph(t, []float64{1, 2}, []graph.Edge{{U: 0, V: 1, Weight: 5}})
	pl := Placement{
		Graph: g, Remote: map[graph.NodeID]bool{1: true},
		DeviceCompute: 7, Bandwidth: 9, PowerTransmit: 11,
	}
	st := pl.State()
	if st.DeviceCompute != 7 || st.Bandwidth != 9 || st.PowerTransmit != 11 {
		t.Errorf("overrides lost: %+v", st)
	}
}
