// Package mec models the multi-user mobile-edge-computing system of the
// paper's §II: users with resource-constrained devices, one shared edge
// server S, and the energy/time cost formulas (1)–(6) that the offloading
// objective minimises.
//
// Conventions. Work is measured in abstract computation units (the node
// weights of function data-flow graphs); communication in data units (edge
// weights); computing resources in work units per second; bandwidth in data
// units per second; power in energy units per second of activity.
//
// Server contention. The paper leaves the allocation policy of S abstract
// (Iˢᵢ is "the available computing resources of uᵢ assigned by S", with a
// waiting time wtᵢ). This package implements processor sharing: the k users
// with offloaded work each receive capacity/k, and the waiting time is the
// slowdown relative to owning the whole server — wtᵢ = tsᵢ − remoteᵢ/capacity.
// That reproduces the paper's qualitative claim that "too much offloading
// will inevitably increase the load of S, and then Σtsᵢ … will also increase
// significantly". internal/sim cross-validates the decomposition with a
// discrete-event FIFO/PS queue.
package mec

import (
	"errors"
	"fmt"

	"copmecs/internal/graph"
)

// ErrBadParams is returned for non-positive capacities, powers or bandwidth.
var ErrBadParams = errors.New("mec: invalid parameters")

// Params are the shared system constants. The paper assumes ∀uᵢ: bᵢ = b,
// pᵢᶜ = pᶜ, pᵢᵗ = pᵗ ("for the simplicity of discussion"); per-user device
// speeds may still be overridden in UserState.
type Params struct {
	// ServerCapacity is the edge server's total computing resources.
	ServerCapacity float64
	// DeviceCompute is Iᶜᵢ: a device's computing resources (default for all
	// users).
	DeviceCompute float64
	// PowerCompute is pᶜ: energy per second of local computing.
	PowerCompute float64
	// PowerTransmit is pᵗ: energy per data unit transmitted. The paper notes
	// pᵗ ≫ pᶜ; Defaults reflects that.
	PowerTransmit float64
	// Bandwidth is b: data units per second between any user and S.
	Bandwidth float64
}

// Defaults returns the parameter set used by the experiments: an edge
// server 10× faster than a device, and wireless transmission markedly more
// expensive per unit than local computing.
func Defaults() Params {
	return Params{
		ServerCapacity: 5000,
		DeviceCompute:  100,
		PowerCompute:   1,
		PowerTransmit:  6,
		Bandwidth:      200,
	}
}

// Validate checks that all parameters are positive.
func (p Params) Validate() error {
	switch {
	case p.ServerCapacity <= 0:
		return fmt.Errorf("%w: server capacity %g", ErrBadParams, p.ServerCapacity)
	case p.DeviceCompute <= 0:
		return fmt.Errorf("%w: device compute %g", ErrBadParams, p.DeviceCompute)
	case p.PowerCompute <= 0:
		return fmt.Errorf("%w: compute power %g", ErrBadParams, p.PowerCompute)
	case p.PowerTransmit <= 0:
		return fmt.Errorf("%w: transmit power %g", ErrBadParams, p.PowerTransmit)
	case p.Bandwidth <= 0:
		return fmt.Errorf("%w: bandwidth %g", ErrBadParams, p.Bandwidth)
	}
	return nil
}

// LocalTime is formula (1): tᶜ = Σ wⱼ / Iᶜ.
func LocalTime(localWork, deviceCompute float64) float64 {
	if deviceCompute <= 0 {
		return 0
	}
	return localWork / deviceCompute
}

// RemoteTime is formula (2): tˢ = Σ wⱼ / Iˢ + wt.
func RemoteTime(remoteWork, serverShare, wait float64) float64 {
	if serverShare <= 0 {
		return wait
	}
	return remoteWork/serverShare + wait
}

// LocalEnergy is formula (3): eᶜ = tᶜ · pᶜ.
func LocalEnergy(localTime, powerCompute float64) float64 {
	return localTime * powerCompute
}

// TransmissionEnergy is formula (4): eᵗ = Σ s(vⱼ, vₗ) · pᵗ / b over the cut.
func TransmissionEnergy(cutWeight, powerTransmit, bandwidth float64) float64 {
	if bandwidth <= 0 {
		return 0
	}
	return cutWeight * powerTransmit / bandwidth
}

// TransmissionTime is formula (5): tᵗ = Σ s(vⱼ, vₗ) / b over the cut.
func TransmissionTime(cutWeight, bandwidth float64) float64 {
	if bandwidth <= 0 {
		return 0
	}
	return cutWeight / bandwidth
}

// UserState summarises one user's placement: how much work runs locally,
// how much is offloaded, and the communication crossing the split.
type UserState struct {
	// LocalWork is Σ wⱼ over Vᶜ (functions kept on the device).
	LocalWork float64
	// RemoteWork is Σ wⱼ over Vˢ (functions offloaded to S).
	RemoteWork float64
	// CutWeight is the total edge weight between Vᶜ and Vˢ.
	CutWeight float64
	// DeviceCompute overrides Params.DeviceCompute when positive.
	DeviceCompute float64
	// Bandwidth overrides Params.Bandwidth when positive (a user on a
	// poor radio link). The paper assumes bᵢ = b "for the simplicity of
	// discussion"; heterogeneous links are a strict generalisation.
	Bandwidth float64
	// PowerTransmit overrides Params.PowerTransmit when positive.
	PowerTransmit float64
}

// UserCost is the per-user breakdown of formulas (1)–(5).
type UserCost struct {
	LocalTime          float64 // (1)
	RemoteTime         float64 // (2), includes WaitTime
	WaitTime           float64 // wtᵢ component of (2)
	TransmissionTime   float64 // (5)
	LocalEnergy        float64 // (3)
	TransmissionEnergy float64 // (4)
	ServerShare        float64 // Iˢᵢ under processor sharing
}

// Evaluation aggregates the double objective (6) over all users.
type Evaluation struct {
	PerUser []UserCost
	// LocalEnergy, TransmissionEnergy and Energy are Σeᶜ, Σeᵗ and E.
	LocalEnergy        float64
	TransmissionEnergy float64
	Energy             float64
	// LocalTime, RemoteTime, WaitTime, TransmissionTime and Time are the T
	// components: T = Σtᶜ + Σtˢ + Σtᵗ (tˢ already embeds the waiting time).
	LocalTime        float64
	RemoteTime       float64
	WaitTime         float64
	TransmissionTime float64
	Time             float64
	// Objective is E + T, the scalarisation Algorithm 2's greedy descends.
	Objective float64
	// ActiveUsers is k, the number of users with offloaded work.
	ActiveUsers int
}

// Evaluate applies formulas (1)–(6) to the given user states under
// processor sharing at the server.
func Evaluate(p Params, users []UserState) (*Evaluation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ev := &Evaluation{PerUser: make([]UserCost, len(users))}
	for _, u := range users {
		if u.RemoteWork > 0 {
			ev.ActiveUsers++
		}
	}
	share := p.ServerCapacity
	if ev.ActiveUsers > 0 {
		share = p.ServerCapacity / float64(ev.ActiveUsers)
	}
	for i, u := range users {
		dev := u.DeviceCompute
		if dev <= 0 {
			dev = p.DeviceCompute
		}
		bw := u.Bandwidth
		if bw <= 0 {
			bw = p.Bandwidth
		}
		pt := u.PowerTransmit
		if pt <= 0 {
			pt = p.PowerTransmit
		}
		var c UserCost
		c.LocalTime = LocalTime(u.LocalWork, dev)
		c.LocalEnergy = LocalEnergy(c.LocalTime, p.PowerCompute)
		if u.RemoteWork > 0 {
			c.ServerShare = share
			// Waiting time = slowdown versus owning the whole server.
			c.WaitTime = u.RemoteWork/share - u.RemoteWork/p.ServerCapacity
			c.RemoteTime = RemoteTime(u.RemoteWork, p.ServerCapacity, c.WaitTime)
		}
		c.TransmissionTime = TransmissionTime(u.CutWeight, bw)
		c.TransmissionEnergy = TransmissionEnergy(u.CutWeight, pt, bw)
		ev.PerUser[i] = c

		ev.LocalEnergy += c.LocalEnergy
		ev.TransmissionEnergy += c.TransmissionEnergy
		ev.LocalTime += c.LocalTime
		ev.RemoteTime += c.RemoteTime
		ev.WaitTime += c.WaitTime
		ev.TransmissionTime += c.TransmissionTime
	}
	ev.Energy = ev.LocalEnergy + ev.TransmissionEnergy
	ev.Time = ev.LocalTime + ev.RemoteTime + ev.TransmissionTime
	ev.Objective = ev.Energy + ev.Time
	return ev, nil
}

// Placement is one user's offloading decision over their function graph.
type Placement struct {
	// Graph is the user's function data-flow graph.
	Graph *graph.Graph
	// Remote marks the offloaded nodes; everything else runs locally.
	Remote map[graph.NodeID]bool
	// DeviceCompute optionally overrides the default device speed.
	DeviceCompute float64
	// Bandwidth optionally overrides the default uplink rate.
	Bandwidth float64
	// PowerTransmit optionally overrides the default radio power.
	PowerTransmit float64
}

// State derives the UserState (work sums and cut weight) from a placement.
func (pl Placement) State() UserState {
	var st UserState
	st.DeviceCompute = pl.DeviceCompute
	st.Bandwidth = pl.Bandwidth
	st.PowerTransmit = pl.PowerTransmit
	for _, id := range pl.Graph.Nodes() {
		w, err := pl.Graph.NodeWeight(id)
		if err != nil {
			continue // unreachable: id came from Nodes()
		}
		if pl.Remote[id] {
			st.RemoteWork += w
		} else {
			st.LocalWork += w
		}
	}
	st.CutWeight = pl.Graph.CutWeight(pl.Remote)
	return st
}

// EvaluatePlacements derives every user's state and evaluates the system.
func EvaluatePlacements(p Params, placements []Placement) (*Evaluation, error) {
	users := make([]UserState, len(placements))
	for i, pl := range placements {
		users[i] = pl.State()
	}
	return Evaluate(p, users)
}
