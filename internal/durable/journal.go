package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Segment file format: a 6-byte header (magic u32 "COPJ" | version u16)
// followed by framed records (see record.go). Segments are append-only
// and named wal-%016x.log by their sequence number; a new segment opens
// at every snapshot barrier and after a failed append (so a torn frame
// never has live records written after it).
const (
	journalMagic   = 0x434f504a // "COPJ"
	journalVersion = 1
	segHeaderLen   = 6
)

// ErrClosed is returned by operations on a closed journal or store.
var ErrClosed = errors.New("durable: closed")

// segName renders the file name of segment seq.
func segName(seq uint64) string { return fmt.Sprintf("wal-%016x.log", seq) }

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "wal-%016x.log", &seq); err != nil {
		return 0, false
	}
	return seq, name == segName(seq)
}

// journal is the write-ahead log: an active append-only segment plus the
// frozen segments awaiting truncation. Appends serialize on mu (a write
// is one buffered frame build plus one write syscall — the page cache,
// not the disk, absorbs it); fsync runs outside mu so a group commit
// never stalls concurrent appends. syncMu serializes fsync, rotation and
// close against each other so the active file handle is never closed
// under an in-flight Sync; whenever both locks are held, syncMu is
// acquired first.
type journal struct {
	fsys      FS
	dir       string
	maxRecord int
	syncEvery bool // fsync inline on every append (FsyncInterval < 0)

	syncMu sync.Mutex // held across fsync/rotate/close; before mu
	mu     sync.Mutex // guards the fields below
	f      File       // active segment, nil once closed
	seg    uint64     // active segment sequence number
	// outstanding counts appended-but-not-yet-applied records per
	// segment; a frozen segment is deletable only once its count is zero
	// (its every record's effects are visible to a snapshot scan).
	outstanding map[uint64]int
	frozen      []uint64 // frozen segment seqs still on disk, ascending
	poisoned    bool     // a write failed mid-frame; rotate before the next append
	closed      bool
	scratch     []byte

	records   atomic.Uint64
	bytes     atomic.Uint64
	writeErrs atomic.Uint64
	syncErrs  atomic.Uint64
	lastSync  atomic.Int64 // unix nanos of the last successful fsync
}

// openJournal opens a fresh active segment with sequence activeSeq in dir,
// treating existing (already scanned) segments as frozen.
func openJournal(fsys FS, dir string, activeSeq uint64, frozen []uint64, maxRecord int, syncEvery bool) (*journal, error) {
	j := &journal{
		fsys:        fsys,
		dir:         dir,
		maxRecord:   maxRecord,
		syncEvery:   syncEvery,
		seg:         activeSeq,
		outstanding: make(map[uint64]int),
		frozen:      append([]uint64(nil), frozen...),
	}
	sort.Slice(j.frozen, func(a, b int) bool { return j.frozen[a] < j.frozen[b] })
	f, err := j.createSegment(activeSeq)
	if err != nil {
		return nil, err
	}
	j.f = f
	j.lastSync.Store(time.Now().UnixNano())
	return j, nil
}

// createSegment creates segment seq's file and writes its header.
func (j *journal) createSegment(seq uint64) (File, error) {
	f, err := j.fsys.OpenFile(filepath.Join(j.dir, segName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: create segment %d: %w", seq, err)
	}
	var hdr [segHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], journalMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], journalVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("durable: segment %d header: %w", seq, err)
	}
	return f, nil
}

// append writes one framed record to the active segment and returns the
// segment sequence number the record landed in (the caller's applied
// token). The write reaches the OS page cache before append returns — so
// a SIGKILL loses nothing once the caller has seen the token — but
// stable-storage durability waits for the next group fsync.
func (j *journal) append(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > j.maxRecord {
		return 0, fmt.Errorf("%w: payload of %d bytes", ErrCorruptRecord, len(payload))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	if j.poisoned {
		return 0, fmt.Errorf("durable: segment %d poisoned by a failed write", j.seg)
	}
	j.scratch = appendFrame(j.scratch[:0], payload)
	if _, err := j.f.Write(j.scratch); err != nil {
		// The frame may be partially on disk: recovery will truncate it,
		// but nothing more may be appended after the tear.
		j.poisoned = true
		j.writeErrs.Add(1)
		return 0, fmt.Errorf("durable: append to segment %d: %w", j.seg, err)
	}
	j.outstanding[j.seg]++
	j.records.Add(1)
	j.bytes.Add(uint64(len(j.scratch)))
	if j.syncEvery {
		if err := j.f.Sync(); err != nil {
			j.syncErrs.Add(1)
			return 0, fmt.Errorf("durable: fsync segment %d: %w", j.seg, err)
		}
		j.lastSync.Store(time.Now().UnixNano())
	}
	return j.seg, nil
}

// applied marks one record of segment seg as applied: its effects are now
// published in the caller's in-memory state, so a snapshot scan that
// starts later will capture them.
func (j *journal) applied(seg uint64) {
	j.mu.Lock()
	if n, ok := j.outstanding[seg]; ok {
		if n <= 1 {
			delete(j.outstanding, seg)
		} else {
			j.outstanding[seg] = n - 1
		}
	}
	j.mu.Unlock()
}

// sync flushes the active segment with a group fsync. Appends proceed
// concurrently: bytes written after the fsync starts simply wait for the
// next one.
func (j *journal) sync() error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	f := j.f
	j.mu.Unlock()
	if f == nil {
		return ErrClosed
	}
	if err := f.Sync(); err != nil {
		j.syncErrs.Add(1)
		return err
	}
	j.lastSync.Store(time.Now().UnixNano())
	return nil
}

// rotate freezes the active segment and opens a fresh one, returning the
// new active sequence number (the snapshot barrier: every record in
// segments < barrier was appended before this call) and the list of
// frozen segments that were fully applied at rotation time. Only those
// may be deleted once the snapshot that triggered the rotation commits:
// a record applied before the rotation had published its effects before
// the snapshot scan started, so the snapshot is a superset of it.
func (j *journal) rotate() (barrier uint64, deletable []uint64, err error) {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, nil, ErrClosed
	}
	newSeq := j.seg + 1
	j.mu.Unlock()

	nf, err := j.createSegment(newSeq)
	if err != nil {
		return 0, nil, err
	}
	j.mu.Lock()
	old := j.f
	oldSeq := j.seg
	j.f = nf
	j.seg = newSeq
	j.poisoned = false
	j.frozen = append(j.frozen, oldSeq)
	for _, seq := range j.frozen {
		if j.outstanding[seq] == 0 {
			deletable = append(deletable, seq)
		}
	}
	j.mu.Unlock()

	// Seal the frozen segment: push its tail to stable storage before the
	// snapshot that will truncate it can commit.
	if err := old.Sync(); err != nil {
		j.syncErrs.Add(1)
	}
	if err := old.Close(); err != nil {
		j.writeErrs.Add(1)
	}
	return newSeq, deletable, nil
}

// removeSegments deletes the given frozen segments from disk and from the
// frozen list. Removal failures are counted but not fatal — an undeleted
// segment is replayed idempotently on the next boot.
func (j *journal) removeSegments(seqs []uint64) {
	if len(seqs) == 0 {
		return
	}
	drop := make(map[uint64]bool, len(seqs))
	for _, seq := range seqs {
		if err := j.fsys.Remove(filepath.Join(j.dir, segName(seq))); err != nil {
			j.writeErrs.Add(1)
			continue
		}
		drop[seq] = true
	}
	j.mu.Lock()
	kept := j.frozen[:0]
	for _, seq := range j.frozen {
		if !drop[seq] {
			kept = append(kept, seq)
		}
	}
	j.frozen = kept
	j.mu.Unlock()
	if err := j.fsys.SyncDir(j.dir); err != nil {
		j.syncErrs.Add(1)
	}
}

// segmentCount reports the number of on-disk segments (frozen + active).
func (j *journal) segmentCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.frozen)
	if !j.closed {
		n++
	}
	return n
}

// close fsyncs and closes the active segment.
func (j *journal) close() error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	f := j.f
	j.f = nil
	j.closed = true
	j.mu.Unlock()
	if f == nil {
		return nil
	}
	serr := f.Sync()
	if serr != nil {
		j.syncErrs.Add(1)
	} else {
		j.lastSync.Store(time.Now().UnixNano())
	}
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// segScanResult is one segment's replay outcome.
type segScanResult struct {
	records      [][]byte
	droppedBytes int64
	truncated    bool
	skipped      bool // unreadable header: the whole file was ignored
}

// scanSegment replays one segment file, returning every CRC-valid record
// in order. A torn or corrupt record ends the scan; when repairTail is
// set (the newest segment — the only one legitimately torn by a crash
// mid-append), the file is truncated back to the last valid record so
// the tear can never shadow future appends. Scanning never fails boot:
// an unreadable file is skipped and counted.
func scanSegment(fsys FS, path string, maxRecord int, repairTail bool) segScanResult {
	var res segScanResult
	flag := os.O_RDONLY
	if repairTail {
		flag = os.O_RDWR
	}
	f, err := fsys.OpenFile(path, flag, 0)
	if err != nil {
		res.skipped = true
		return res
	}
	defer func() { _ = f.Close() }()

	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil ||
		binary.LittleEndian.Uint32(hdr[0:4]) != journalMagic ||
		binary.LittleEndian.Uint16(hdr[4:6]) != journalVersion {
		res.skipped = true
		return res
	}
	sc := newRecordScanner(f, segHeaderLen, maxRecord)
	for {
		payload, err := sc.next()
		if errors.Is(err, io.EOF) {
			return res
		}
		if err != nil {
			// Torn or corrupt tail: everything before it is good, nothing
			// after it is trustworthy (framing is lost).
			res.droppedBytes = sc.off - sc.validOff
			if rest, rerr := io.Copy(io.Discard, f); rerr == nil {
				res.droppedBytes += rest
			}
			if repairTail {
				if terr := f.Truncate(sc.validOff); terr == nil {
					res.truncated = true
					_ = f.Sync()
				}
			}
			return res
		}
		res.records = append(res.records, payload)
	}
}
