package durable

import (
	"io"
	"io/fs"
	"os"
	"sort"
)

// FS is the filesystem surface the durability layer writes through. It is
// deliberately tiny — exactly the operations the journal and snapshot
// machinery need — so tests can substitute a fault-injecting
// implementation (faultnet.FS) that manufactures short writes, fsync
// failures and corrupt bytes deterministically.
type FS interface {
	// OpenFile opens name with the given flag and permissions.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (the snapshot
	// commit point).
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists the file names in dir, sorted ascending.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// SyncDir fsyncs the directory itself, making completed renames and
	// removals durable against power loss.
	SyncDir(dir string) error
}

// File is one open journal segment or snapshot file.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's dirty pages to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (torn-tail repair).
	Truncate(size int64) error
}

// OS is the production FS: a pass-through to the operating system.
type OS struct{}

// osFile adapts *os.File to File (it already satisfies it; the wrapper
// only exists so OpenFile's return type is the interface).
type osFile struct{ *os.File }

// OpenFile opens name via os.OpenFile.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename forwards to os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove forwards to os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadDir lists dir's entry names, sorted ascending.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll forwards to os.MkdirAll.
func (OS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir opens dir and fsyncs it, so directory mutations (segment
// creation, snapshot rename, truncation-by-remove) survive power loss.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
