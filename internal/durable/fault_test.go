package durable_test

// Black-box fault-injection suite: faultnet.FS manufactures short
// writes, fsync failures and silent corruption under the store, and
// every scenario must end with the same invariant — the corrupt tail is
// truncated at the last valid record, never served, and never prevents
// boot. (faultnet imports durable, so these tests live in the external
// test package.)

import (
	"bytes"
	"errors"
	"testing"

	"copmecs/internal/durable"
	"copmecs/internal/faultnet"
)

// reopen closes nothing and opens a plain-OS store on dir, failing t on
// error.
func reopen(t *testing.T, dir string) (*durable.Store, *durable.Recovery) {
	t.Helper()
	s, rec, err := durable.Open(durable.Options{Dir: dir, FsyncInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

func TestShortWriteTornRecordTruncatedOnBoot(t *testing.T) {
	dir := t.TempDir()
	fs := faultnet.WrapFS(nil)
	s, _, err := durable.Open(durable.Options{Dir: dir, FS: fs, FsyncInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.Append([]byte("good-before")); err != nil {
		t.Fatalf("Append: %v", err)
	}

	// The armed short write delivers half a frame and errors; the store
	// rotates to a fresh segment and retries, so the caller still gets a
	// journaled record and the torn frame never shadows it.
	fs.ShortWrites(1)
	if _, err := s.Append([]byte("good-after-retry")); err != nil {
		t.Fatalf("Append with short-write fault: %v", err)
	}
	if st := fs.Stats(); st.ShortWrites != 1 {
		t.Fatalf("ShortWrites = %d, want 1", st.ShortWrites)
	}
	if got := s.Stats().WriteErrors; got == 0 {
		t.Fatal("WriteErrors not counted for the short write")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec := reopen(t, dir)
	defer s2.Close()
	want := [][]byte{[]byte("good-before"), []byte("good-after-retry")}
	if len(rec.JournalRecords) != len(want) {
		t.Fatalf("recovered %d records (%q), want %d", len(rec.JournalRecords), rec.JournalRecords, len(want))
	}
	for i, p := range want {
		if !bytes.Equal(rec.JournalRecords[i], p) {
			t.Fatalf("record %d = %q, want %q", i, rec.JournalRecords[i], p)
		}
	}
	if rec.DroppedBytes == 0 {
		t.Fatal("torn frame's bytes not reported as dropped")
	}
}

func TestShortWriteWithoutRotateFailsAppendNotBoot(t *testing.T) {
	dir := t.TempDir()
	fs := faultnet.WrapFS(nil)
	s, _, err := durable.Open(durable.Options{Dir: dir, FS: fs, FsyncInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Two armed faults: the first append tears, the rotate-and-retry's
	// second write tears too — Append finally fails, but recovery still
	// boots and serves the empty prefix. (The retry path opens a new
	// segment whose header write also draws a fault in this arming, which
	// is exactly the cascading-failure case.)
	fs.ShortWrites(2)
	if _, err := s.Append([]byte("doomed")); err == nil {
		t.Fatal("Append succeeded despite two torn writes")
	}
	_ = s.Close()

	s2, rec := reopen(t, dir)
	defer s2.Close()
	if len(rec.JournalRecords) != 0 {
		t.Fatalf("recovered %d records from torn-only journal, want 0", len(rec.JournalRecords))
	}
}

func TestCorruptWriteNeverServed(t *testing.T) {
	dir := t.TempDir()
	fs := faultnet.WrapFS(nil)
	s, _, err := durable.Open(durable.Options{Dir: dir, FS: fs, FsyncInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.Append([]byte("clean")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Silent corruption: the write reports success but a byte flipped on
	// the way down. The record must fail its checksum at recovery and be
	// dropped — and never surface to the caller.
	fs.CorruptWrites(1)
	if _, err := s.Append([]byte("silently-mangled")); err != nil {
		t.Fatalf("Append with corrupt-write fault: %v", err)
	}
	if st := fs.Stats(); st.CorruptWrites != 1 {
		t.Fatalf("CorruptWrites = %d, want 1", st.CorruptWrites)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec := reopen(t, dir)
	defer s2.Close()
	if len(rec.JournalRecords) != 1 || !bytes.Equal(rec.JournalRecords[0], []byte("clean")) {
		t.Fatalf("recovered %q, want only the clean record", rec.JournalRecords)
	}
	if rec.DroppedBytes == 0 || !rec.TailTruncated {
		t.Fatalf("corrupt tail not truncated: %+v", rec)
	}
}

func TestFsyncErrorSurfacedInStrictModeAndCounted(t *testing.T) {
	dir := t.TempDir()
	fs := faultnet.WrapFS(nil)
	s, _, err := durable.Open(durable.Options{Dir: dir, FS: fs, FsyncInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fs.FailSyncs(1)
	// Strict mode fsyncs inline. A single injected failure is absorbed by
	// the rotate-and-retry: the record lands again on a fresh segment
	// whose fsync succeeds, so the caller still gets durable success.
	if _, err := s.Append([]byte("synced-badly")); err != nil {
		t.Fatalf("Append with one fsync fault = %v, want retried success", err)
	}
	if got := s.Stats().FsyncErrors; got != 1 {
		t.Fatalf("FsyncErrors = %d, want 1", got)
	}
	// Back-to-back failures exhaust the retry and surface to the caller.
	fs.FailSyncs(3) // first append's sync, the rotation's seal, the retry's sync
	if _, err := s.Append([]byte("doomed")); !errors.Is(err, faultnet.ErrInjectedSyncFail) {
		t.Fatalf("Append with persistent fsync faults = %v, want ErrInjectedSyncFail", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Every written record is still in the page cache and replays — the
	// retried record twice, the failed one too (fsync only defends power
	// loss, not process death); replay is idempotent for the caller.
	s2, rec := reopen(t, dir)
	defer s2.Close()
	byBody := map[string]int{}
	for _, p := range rec.JournalRecords {
		byBody[string(p)]++
	}
	if byBody["synced-badly"] != 2 || byBody["doomed"] != 2 {
		t.Fatalf("recovered multiset = %v, want synced-badly x2 and doomed x2", byBody)
	}
}

func TestSnapshotSyncFailureKeepsJournalAuthoritative(t *testing.T) {
	dir := t.TempDir()
	fs := faultnet.WrapFS(nil)
	s, _, err := durable.Open(durable.Options{Dir: dir, FS: fs, FsyncInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seg, err := s.Append([]byte("must-survive"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	s.Applied(seg)
	// Fail the snapshot file's fsync: the snapshot aborts before its
	// rename, so the journal remains the only authority. Two faults: the
	// rotation seals the frozen segment with an fsync (a counted, non-fatal
	// failure) before the snapshot file's own fsync runs.
	fs.FailSyncs(2)
	if err := s.Snapshot(func(add func([]byte) error) error {
		return add([]byte("state"))
	}); !errors.Is(err, faultnet.ErrInjectedSyncFail) {
		t.Fatalf("Snapshot = %v, want ErrInjectedSyncFail", err)
	}
	if got := s.Stats().SnapshotErrors; got != 1 {
		t.Fatalf("SnapshotErrors = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec := reopen(t, dir)
	defer s2.Close()
	if rec.SnapshotSeq != 0 {
		t.Fatalf("SnapshotSeq = %d, want 0 (failed snapshot must not commit)", rec.SnapshotSeq)
	}
	if len(rec.JournalRecords) != 1 || !bytes.Equal(rec.JournalRecords[0], []byte("must-survive")) {
		t.Fatalf("journal record lost after failed snapshot: %q", rec.JournalRecords)
	}
}
