package durable

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openTest opens a store on dir with test-friendly options: strict fsync
// (no background goroutine, deterministic) unless overridden.
func openTest(t *testing.T, dir string) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(Options{Dir: dir, FsyncInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

// payloads renders n distinct record payloads.
func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d-%s", i, "payload"))
	}
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	want := payloads(5)
	for _, p := range want {
		buf = appendFrame(buf, p)
	}
	sc := newRecordScanner(bytes.NewReader(buf), 0, 0)
	for i, w := range want {
		got, err := sc.next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("record %d = %q, want %q", i, got, w)
		}
	}
	if _, err := sc.next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after last record: %v, want EOF", err)
	}
	if sc.validOff != int64(len(buf)) {
		t.Fatalf("validOff = %d, want %d", sc.validOff, len(buf))
	}
}

func TestScannerRejectsZeroLengthAndOversize(t *testing.T) {
	// A zero-length frame (e.g. an all-zero page) must be corrupt, not an
	// empty record.
	zero := make([]byte, 64)
	sc := newRecordScanner(bytes.NewReader(zero), 0, 0)
	if _, err := sc.next(); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("zero page: %v, want ErrCorruptRecord", err)
	}
	// A length beyond the cap is rejected before allocation.
	huge := appendFrame(nil, bytes.Repeat([]byte{7}, 100))
	sc = newRecordScanner(bytes.NewReader(huge), 0, 10)
	if _, err := sc.next(); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("oversize: %v, want ErrCorruptRecord", err)
	}
}

func TestScannerReportsTornHeaderAndPayload(t *testing.T) {
	full := appendFrame(nil, []byte("hello"))
	for _, cut := range []int{1, frameHeaderLen - 1, frameHeaderLen + 2} {
		sc := newRecordScanner(bytes.NewReader(full[:cut]), 0, 0)
		if _, err := sc.next(); !errors.Is(err, ErrTornRecord) {
			t.Fatalf("cut at %d: %v, want ErrTornRecord", cut, err)
		}
		if sc.validOff != 0 {
			t.Fatalf("cut at %d: validOff = %d, want 0", cut, sc.validOff)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := openTest(t, dir)
	if rec.SnapshotSeq != 0 || len(rec.JournalRecords) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	want := payloads(10)
	for _, p := range want {
		if _, err := s.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := s.Stats()
	if st.JournalRecords != 10 {
		t.Fatalf("JournalRecords = %d, want 10", st.JournalRecords)
	}
	if st.LastFsync.IsZero() {
		t.Fatal("strict mode left LastFsync zero")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec2 := openTest(t, dir)
	defer s2.Close()
	if len(rec2.JournalRecords) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.JournalRecords), len(want))
	}
	for i, p := range want {
		if !bytes.Equal(rec2.JournalRecords[i], p) {
			t.Fatalf("record %d = %q, want %q", i, rec2.JournalRecords[i], p)
		}
	}
	if rec2.TailTruncated || rec2.DroppedBytes != 0 {
		t.Fatalf("clean shutdown reported damage: %+v", rec2)
	}
}

func TestAppendRejectsEmptyAndOversize(t *testing.T) {
	s, _ := openTest(t, t.TempDir())
	defer s.Close()
	if _, err := s.Append(nil); err == nil {
		t.Fatal("Append(nil) succeeded")
	}
	if _, err := s.Append(make([]byte, DefaultMaxRecordBytes+1)); err == nil {
		t.Fatal("oversize Append succeeded")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s, _ := openTest(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Append([]byte("x")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := s.Snapshot(func(func([]byte) error) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// activeSegPath returns the path of the newest wal segment in dir.
func activeSegPath(t *testing.T, dir string) string {
	t.Helper()
	names, err := OS{}.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	last := ""
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			last = name
		}
	}
	if last == "" {
		t.Fatal("no wal segment on disk")
	}
	return filepath.Join(dir, last)
}

func TestTornTailTruncatedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir)
	want := payloads(3)
	for _, p := range want {
		if _, err := s.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail: a partial frame of a crashed append.
	path := activeSegPath(t, dir)
	torn := appendFrame(nil, []byte("never finished"))[:11]
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatalf("tear: %v", err)
	}
	f.Close()
	sizeWithTear := fileSize(t, path)

	s2, rec := openTest(t, dir)
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(rec.JournalRecords) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.JournalRecords), len(want))
	}
	if !rec.TailTruncated || rec.DroppedBytes != int64(len(torn)) {
		t.Fatalf("tear not reported: %+v", rec)
	}
	if got := fileSize(t, path); got != sizeWithTear-int64(len(torn)) {
		t.Fatalf("segment size after repair = %d, want %d", got, sizeWithTear-int64(len(torn)))
	}

	// The repair persisted: a third boot sees a clean prefix.
	s3, rec3 := openTest(t, dir)
	defer s3.Close()
	if rec3.TailTruncated || rec3.DroppedBytes != 0 || len(rec3.JournalRecords) != len(want) {
		t.Fatalf("repair did not persist: %+v", rec3)
	}
}

func TestMidSegmentCorruptionDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir)
	want := payloads(4)
	for _, p := range want {
		if _, err := s.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip one byte inside the third record's payload: records 0–1 stay
	// valid, 2 fails its checksum, 3 is unreachable (framing lost).
	path := activeSegPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	frame := frameHeaderLen + len(want[0])
	off := segHeaderLen + 2*frame + frameHeaderLen + 3
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write corrupted segment: %v", err)
	}

	s2, rec := openTest(t, dir)
	defer s2.Close()
	if len(rec.JournalRecords) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.JournalRecords))
	}
	for i := 0; i < 2; i++ {
		if !bytes.Equal(rec.JournalRecords[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, rec.JournalRecords[i], want[i])
		}
	}
	if rec.DroppedBytes != int64(2*frame) {
		t.Fatalf("DroppedBytes = %d, want %d", rec.DroppedBytes, 2*frame)
	}
}

func TestUnreadableSegmentSkippedNotFatal(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir)
	if _, err := s.Append([]byte("good")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A wal-named file with a garbage header: skipped, never fatal.
	if err := os.WriteFile(filepath.Join(dir, segName(99)), []byte("not a journal"), 0o644); err != nil {
		t.Fatalf("write bogus segment: %v", err)
	}
	s2, rec := openTest(t, dir)
	defer s2.Close()
	if rec.SegmentsSkipped != 1 {
		t.Fatalf("SegmentsSkipped = %d, want 1", rec.SegmentsSkipped)
	}
	if len(rec.JournalRecords) != 1 || !bytes.Equal(rec.JournalRecords[0], []byte("good")) {
		t.Fatalf("good record lost: %+v", rec.JournalRecords)
	}
}

// countFiles counts dir entries matching the given parser.
func countFiles(t *testing.T, dir string, parse func(string) (uint64, bool)) int {
	t.Helper()
	names, err := OS{}.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	n := 0
	for _, name := range names {
		if _, ok := parse(name); ok {
			n++
		}
	}
	return n
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	return fi.Size()
}

func TestSnapshotTruncatesAppliedSegments(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir)
	for _, p := range payloads(6) {
		seg, err := s.Append(p)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		s.Applied(seg)
	}
	state := payloads(3)
	if err := s.Snapshot(func(add func([]byte) error) error {
		for _, p := range state {
			if err := add(p); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec := openTest(t, dir)
	defer s2.Close()
	if rec.SnapshotSeq != 1 {
		t.Fatalf("SnapshotSeq = %d, want 1", rec.SnapshotSeq)
	}
	if len(rec.SnapshotRecords) != len(state) {
		t.Fatalf("snapshot records = %d, want %d", len(rec.SnapshotRecords), len(state))
	}
	for i, p := range state {
		if !bytes.Equal(rec.SnapshotRecords[i], p) {
			t.Fatalf("snapshot record %d = %q, want %q", i, rec.SnapshotRecords[i], p)
		}
	}
	// Every journal record was applied before the snapshot: nothing to
	// replay.
	if len(rec.JournalRecords) != 0 {
		t.Fatalf("journal tail = %d records, want 0", len(rec.JournalRecords))
	}
}

func TestSnapshotKeepsUnappliedSegments(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir)
	seg1, err := s.Append([]byte("applied"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := s.Append([]byte("in-flight")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	s.Applied(seg1)
	// One record of the segment is still outstanding at rotation time: the
	// whole segment must survive the snapshot.
	if err := s.Snapshot(func(add func([]byte) error) error {
		return add([]byte("state"))
	}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec := openTest(t, dir)
	defer s2.Close()
	if len(rec.JournalRecords) != 2 {
		t.Fatalf("journal tail = %d records, want 2 (unapplied segment replays whole)", len(rec.JournalRecords))
	}
}

func TestSnapshotFallbackToOlderAndCleanup(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir)
	for i := 1; i <= 3; i++ {
		body := []byte(fmt.Sprintf("state-%d", i))
		if err := s.Snapshot(func(add func([]byte) error) error { return add(body) }); err != nil {
			t.Fatalf("Snapshot %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Only the two newest snapshots survive the cleanup.
	if n := countFiles(t, dir, parseSnapName); n != 2 {
		t.Fatalf("snapshots on disk = %d, want 2", n)
	}

	// Corrupt the newest: boot falls back to the previous one.
	newest := filepath.Join(dir, snapName(3))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}

	s2, rec := openTest(t, dir)
	if rec.InvalidSnapshots != 1 {
		t.Fatalf("InvalidSnapshots = %d, want 1", rec.InvalidSnapshots)
	}
	if rec.SnapshotSeq != 2 || len(rec.SnapshotRecords) != 1 ||
		!bytes.Equal(rec.SnapshotRecords[0], []byte("state-2")) {
		t.Fatalf("fallback snapshot wrong: seq %d records %q", rec.SnapshotSeq, rec.SnapshotRecords)
	}
	// The next snapshot must not collide with the corrupt seq-3 file.
	if err := s2.Snapshot(func(add func([]byte) error) error { return add([]byte("state-4")) }); err != nil {
		t.Fatalf("Snapshot after fallback: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s3, rec3 := openTest(t, dir)
	defer s3.Close()
	if rec3.SnapshotSeq != 4 || !bytes.Equal(rec3.SnapshotRecords[0], []byte("state-4")) {
		t.Fatalf("post-fallback snapshot: seq %d records %q", rec3.SnapshotSeq, rec3.SnapshotRecords)
	}
}

func TestSnapshotFillErrorKeepsJournal(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir)
	if _, err := s.Append([]byte("survives")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	boom := errors.New("boom")
	if err := s.Snapshot(func(add func([]byte) error) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Snapshot = %v, want boom", err)
	}
	if got := s.Stats().SnapshotErrors; got != 1 {
		t.Fatalf("SnapshotErrors = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, rec := openTest(t, dir)
	defer s2.Close()
	if len(rec.JournalRecords) != 1 || !bytes.Equal(rec.JournalRecords[0], []byte("survives")) {
		t.Fatalf("journal lost after failed snapshot: %+v", rec.JournalRecords)
	}
	if rec.SnapshotSeq != 0 {
		t.Fatalf("SnapshotSeq = %d, want 0 (no committed snapshot)", rec.SnapshotSeq)
	}
	// The aborted temporary must not linger as a visible snapshot.
	if n := countFiles(t, dir, parseSnapName); n != 0 {
		t.Fatalf("snapshots on disk = %d, want 0", n)
	}
}

func TestGroupCommitModeSyncsInBackground(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Options{Dir: dir, FsyncInterval: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	before := s.Stats().LastFsync
	if _, err := s.Append([]byte("grouped")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s.Stats().LastFsync.After(before) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group fsync never advanced LastFsync")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConcurrentAppendsRecoverAll(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Options{Dir: dir, FsyncInterval: 10 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const writers, per = 8, 50
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				if _, err := s.Append([]byte(fmt.Sprintf("w%02d-%04d", w, i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, rec := openTest(t, dir)
	defer s2.Close()
	if len(rec.JournalRecords) != writers*per {
		t.Fatalf("recovered %d records, want %d", len(rec.JournalRecords), writers*per)
	}
	seen := make(map[string]bool, writers*per)
	for _, p := range rec.JournalRecords {
		seen[string(p)] = true
	}
	if len(seen) != writers*per {
		t.Fatalf("distinct recovered records = %d, want %d", len(seen), writers*per)
	}
}
