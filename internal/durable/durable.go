// Package durable is the crash-durability layer under the serving tier: a
// write-ahead journal of accepted requests plus periodic snapshots of the
// in-memory caches, so a daemon that dies — SIGKILL included — restarts
// with warm state and zero lost accepted work.
//
// The package is deliberately payload-agnostic: records are opaque byte
// slices (the serving layer encodes them with the canonical binary graph
// codec), framed as length-prefixed CRC32C records (record.go) in
// append-only journal segments (journal.go) and atomically-renamed
// snapshot files (snapshot.go). Three properties carry the crash
// invariant:
//
//   - an Append reaches the OS page cache before it returns, so a killed
//     process loses nothing it acknowledged; group fsync (a background
//     ticker, never the request path) bounds the exposure to power loss;
//   - a snapshot rotates the journal first and only truncates segments
//     whose every record was Applied before the rotation — such a
//     record's effects were published to the caller's state before the
//     snapshot scan began, so the snapshot strictly covers the truncated
//     records;
//   - recovery replays every segment still on disk in order, tolerates a
//     torn or corrupt tail by truncating back to the last CRC-valid
//     record, and never refuses to boot.
//
// All I/O goes through the FS interface; faultnet.FS substitutes a
// deterministic fault-injecting implementation (short writes, fsync
// errors, corrupt bytes) for the recovery test suite.
package durable

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultFsyncInterval is the default journal group-commit interval.
const DefaultFsyncInterval = 100 * time.Millisecond

// Options configures Open.
type Options struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// FS is the filesystem implementation (nil = the operating system).
	FS FS
	// FsyncInterval is the journal group-commit interval: positive means
	// a background fsync every interval, zero means DefaultFsyncInterval,
	// negative means a synchronous fsync on every append.
	FsyncInterval time.Duration
	// MaxRecordBytes caps one record's payload (≤ 0 =
	// DefaultMaxRecordBytes).
	MaxRecordBytes int
	// Logf, when non-nil, receives recovery and background diagnostics.
	Logf func(format string, args ...any)
}

// Recovery is what Open found on disk: the latest valid snapshot's
// records, the journal tail to replay after them, and the damage report.
type Recovery struct {
	// SnapshotSeq is the loaded snapshot's sequence number (0 = none).
	SnapshotSeq uint64
	// SnapshotRecords are the loaded snapshot's records, in write order.
	SnapshotRecords [][]byte
	// JournalRecords are the replayed journal records, oldest first.
	JournalRecords [][]byte
	// SegmentsScanned counts journal segments replayed.
	SegmentsScanned int
	// SegmentsSkipped counts unreadable segment files ignored.
	SegmentsSkipped int
	// DroppedBytes counts torn/corrupt journal bytes discarded.
	DroppedBytes int64
	// TailTruncated reports that the newest segment's torn tail was cut
	// back to its last valid record.
	TailTruncated bool
	// InvalidSnapshots counts snapshot files that failed validation and
	// were passed over.
	InvalidSnapshots int
}

// Stats is a point-in-time snapshot of the store's counters, feeding the
// durability section of /v1/stats.
type Stats struct {
	// JournalSeq is the active segment's sequence number.
	JournalSeq uint64
	// JournalSegments is the number of on-disk segments (frozen + active).
	JournalSegments int
	// JournalRecords counts records appended since Open.
	JournalRecords uint64
	// JournalBytes counts framed bytes appended since Open.
	JournalBytes uint64
	// WriteErrors counts failed journal writes, closes and removals.
	WriteErrors uint64
	// FsyncErrors counts failed fsyncs (journal and directory).
	FsyncErrors uint64
	// LastFsync is the time of the last successful journal fsync.
	LastFsync time.Time
	// SnapshotSeq is the newest committed snapshot's sequence number.
	SnapshotSeq uint64
	// SnapshotsWritten counts snapshots committed since Open.
	SnapshotsWritten uint64
	// SnapshotErrors counts snapshot attempts that failed.
	SnapshotErrors uint64
	// LastSnapshot is the commit time of the newest snapshot.
	LastSnapshot time.Time
}

// Store is an open durability layer: the journal accepting appends plus
// the snapshot machinery. It implements the serving layer's Journal
// interface (Append/Applied). Open recovers existing state; Close fsyncs
// and stops the background group-commit loop.
type Store struct {
	opts Options
	fsys FS
	j    *journal

	// snapMu serializes snapshots (the periodic loop vs. the drain-time
	// final snapshot) and guards snapSeq.
	snapMu  sync.Mutex
	snapSeq uint64

	snapsWritten atomic.Uint64
	snapErrs     atomic.Uint64
	lastSnap     atomic.Int64 // unix nanos; 0 = no snapshot this run

	stopSync chan struct{}
	syncDone chan struct{}
	closed   atomic.Bool
}

// logf forwards to the configured logger, if any.
func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Open recovers the durable state in opts.Dir — latest valid snapshot,
// then every journal segment still on disk, truncating a torn tail — and
// returns the store ready for appends on a fresh segment. Recovery never
// fails boot on damaged data: torn tails are truncated, corrupt snapshots
// are passed over, unreadable segments are skipped, and the damage is
// reported in Recovery.
func Open(opts Options) (*Store, *Recovery, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("durable: no data directory")
	}
	if opts.FS == nil {
		opts.FS = OS{}
	}
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = DefaultMaxRecordBytes
	}
	syncEvery := opts.FsyncInterval < 0
	if opts.FsyncInterval == 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	fsys := opts.FS
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: mkdir %s: %w", opts.Dir, err)
	}
	names, err := fsys.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: list %s: %w", opts.Dir, err)
	}

	var segs, snaps []uint64
	for _, name := range names {
		if seq, ok := parseSegName(name); ok {
			segs = append(segs, seq)
		} else if seq, ok := parseSnapName(name); ok {
			snaps = append(snaps, seq)
		}
	}

	rec := &Recovery{}
	s := &Store{opts: opts, fsys: fsys}

	// Newest snapshot that validates end to end wins; invalid ones are
	// passed over (and left on disk — the next successful snapshot's
	// cleanup removes them).
	for i := len(snaps) - 1; i >= 0; i-- {
		snap, lerr := loadSnapshot(fsys, filepath.Join(opts.Dir, snapName(snaps[i])), opts.MaxRecordBytes)
		if lerr != nil {
			rec.InvalidSnapshots++
			s.logf("durable: snapshot %d invalid: %v", snaps[i], lerr)
			continue
		}
		rec.SnapshotSeq = snap.seq
		rec.SnapshotRecords = snap.records
		s.snapSeq = snap.seq
		break
	}
	// Never reuse a sequence number that exists on disk — even an invalid
	// snapshot's; the next snapshot must land in a fresh file.
	if len(snaps) > 0 && snaps[len(snaps)-1] > s.snapSeq {
		s.snapSeq = snaps[len(snaps)-1]
	}

	// Replay every segment still on disk, oldest first. Segments the
	// snapshot already covers were deleted at its commit; anything still
	// present either post-dates the snapshot barrier or was blocked from
	// truncation by in-flight records at the time — replaying it again is
	// idempotent for the caller (records key into caches).
	maxSeg := uint64(0)
	for i, seq := range segs {
		if seq > maxSeg {
			maxSeg = seq
		}
		res := scanSegment(fsys, filepath.Join(opts.Dir, segName(seq)), opts.MaxRecordBytes, i == len(segs)-1)
		if res.skipped {
			rec.SegmentsSkipped++
			s.logf("durable: segment %d unreadable, skipped", seq)
			continue
		}
		rec.SegmentsScanned++
		rec.JournalRecords = append(rec.JournalRecords, res.records...)
		rec.DroppedBytes += res.droppedBytes
		if res.truncated {
			rec.TailTruncated = true
		}
		if res.droppedBytes > 0 {
			s.logf("durable: segment %d: dropped %d undecodable tail bytes after %d records",
				seq, res.droppedBytes, len(res.records))
		}
	}

	j, err := openJournal(fsys, opts.Dir, maxSeg+1, segs, opts.MaxRecordBytes, syncEvery)
	if err != nil {
		return nil, nil, err
	}
	s.j = j
	if err := fsys.SyncDir(opts.Dir); err != nil {
		j.syncErrs.Add(1)
	}

	if !syncEvery {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop(opts.FsyncInterval)
	}
	return s, rec, nil
}

// syncLoop is the journal's group-commit ticker.
func (s *Store) syncLoop(interval time.Duration) {
	defer close(s.syncDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.j.sync(); err != nil && err != ErrClosed {
				s.logf("durable: group fsync: %v", err)
			}
		case <-s.stopSync:
			return
		}
	}
}

// Append journals one record, returning the token to pass to Applied once
// the record's effects are published in memory. The record is in the OS
// page cache when Append returns (SIGKILL-safe); stable-storage
// durability follows at the next group fsync. A failed write poisons the
// current segment; Append rotates to a fresh one and retries once, so a
// single bad write (a full disk coming and going, an injected fault)
// costs one record at most.
func (s *Store) Append(payload []byte) (uint64, error) {
	seg, err := s.j.append(payload)
	if err == nil {
		return seg, nil
	}
	if s.closed.Load() {
		return 0, err
	}
	if _, _, rerr := s.j.rotate(); rerr != nil {
		return 0, err
	}
	return s.j.append(payload)
}

// Applied marks one record of segment seg (the token Append returned) as
// applied: its effects are visible to any snapshot scan that starts
// later, so the segment becomes eligible for truncation.
func (s *Store) Applied(seg uint64) { s.j.applied(seg) }

// Sync forces a journal fsync now (tests and drain).
func (s *Store) Sync() error { return s.j.sync() }

// Snapshot writes one snapshot: the journal rotates (freezing the current
// segment and establishing the barrier), fill streams the caller's state
// as records, and on a successful atomic commit the journal segments that
// were fully applied at rotation time — provably covered by this
// snapshot — are deleted, along with all older snapshot files. On any
// failure the previous snapshot and the full journal remain authoritative
// and the error is reported (and counted) but nothing is lost.
func (s *Store) Snapshot(fill func(add func([]byte) error) error) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	barrier, deletable, err := s.j.rotate()
	if err != nil {
		s.snapErrs.Add(1)
		return err
	}
	seq := s.snapSeq + 1
	if err := writeSnapshot(s.fsys, s.opts.Dir, seq, barrier, s.opts.MaxRecordBytes, fill); err != nil {
		s.snapErrs.Add(1)
		return err
	}
	s.snapSeq = seq
	s.snapsWritten.Add(1)
	s.lastSnap.Store(time.Now().UnixNano())

	// The new snapshot is durable: drop the journal prefix it covers,
	// every snapshot older than the previous one (the previous stays as a
	// fallback against later corruption of the newest), and any stale
	// temporaries left by crashed snapshot attempts.
	s.j.removeSegments(deletable)
	if names, lerr := s.fsys.ReadDir(s.opts.Dir); lerr == nil {
		for _, name := range names {
			if q, ok := parseSnapName(name); ok && q+1 < seq {
				_ = s.fsys.Remove(filepath.Join(s.opts.Dir, name))
			} else if strings.HasSuffix(name, ".tmp") {
				_ = s.fsys.Remove(filepath.Join(s.opts.Dir, name))
			}
		}
	}
	return nil
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	st := Stats{
		JournalRecords:   s.j.records.Load(),
		JournalBytes:     s.j.bytes.Load(),
		JournalSegments:  s.j.segmentCount(),
		WriteErrors:      s.j.writeErrs.Load(),
		FsyncErrors:      s.j.syncErrs.Load(),
		SnapshotsWritten: s.snapsWritten.Load(),
		SnapshotErrors:   s.snapErrs.Load(),
	}
	s.j.mu.Lock()
	st.JournalSeq = s.j.seg
	s.j.mu.Unlock()
	s.snapMu.Lock()
	st.SnapshotSeq = s.snapSeq
	s.snapMu.Unlock()
	if ns := s.j.lastSync.Load(); ns > 0 {
		st.LastFsync = time.Unix(0, ns)
	}
	if ns := s.lastSnap.Load(); ns > 0 {
		st.LastSnapshot = time.Unix(0, ns)
	}
	return st
}

// Close stops the group-commit loop and fsyncs and closes the journal.
// Call after the final snapshot; Close itself does not snapshot.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.stopSync != nil {
		close(s.stopSync)
		<-s.syncDone
	}
	return s.j.close()
}
