package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record framing: every journal and snapshot record is stored as
//
//	u32 length | u32 crc32c(payload) | payload[length]
//
// little-endian, with the Castagnoli polynomial (the hardware-accelerated
// CRC used by ext4, Btrfs and most storage formats). The length is
// checked against the configured maximum before any allocation, a
// zero-length record is invalid by definition (an all-zero disk page must
// not scan as an endless stream of empty records), and a record whose
// checksum does not match its payload is never surfaced to the caller.
const (
	// frameHeaderLen is the per-record framing overhead in bytes.
	frameHeaderLen = 8
	// DefaultMaxRecordBytes caps one record's payload (journal appends
	// and snapshot records alike) unless Options overrides it.
	DefaultMaxRecordBytes = 64 << 20
)

// crcTable is the Castagnoli (CRC32C) table shared by all framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Framing errors. Both mark the end of the decodable prefix of a stream;
// the scanner distinguishes them only for diagnostics (a torn record is
// the expected signature of a crash mid-append, a corrupt one of bit rot
// or fault injection).
var (
	// ErrTornRecord reports a record cut short by the end of the file.
	ErrTornRecord = errors.New("durable: torn record")
	// ErrCorruptRecord reports a record whose length or checksum is
	// invalid.
	ErrCorruptRecord = errors.New("durable: corrupt record")
)

// appendFrame appends the framed encoding of payload to dst and returns
// the extended slice.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// recordScanner reads a stream of framed records, tracking the byte
// offset just past the last fully valid record so a torn tail can be
// truncated exactly there.
type recordScanner struct {
	r        io.Reader
	max      int
	validOff int64 // offset just past the last valid record
	off      int64 // offset of the next unread byte
}

// newRecordScanner scans framed records from r, starting at offset start
// (the segment header the caller already consumed), rejecting payloads
// over max bytes.
func newRecordScanner(r io.Reader, start int64, max int) *recordScanner {
	if max <= 0 {
		max = DefaultMaxRecordBytes
	}
	return &recordScanner{r: r, max: max, validOff: start, off: start}
}

// next returns the next record's payload. io.EOF reports a clean end of
// stream; ErrTornRecord and ErrCorruptRecord report an undecodable tail
// beginning at the last valid offset. The returned payload is freshly
// allocated and safe to retain.
func (s *recordScanner) next() ([]byte, error) {
	var hdr [frameHeaderLen]byte
	n, err := io.ReadFull(s.r, hdr[:])
	s.off += int64(n)
	if errors.Is(err, io.EOF) {
		return nil, io.EOF
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, fmt.Errorf("%w: partial header (%d bytes)", ErrTornRecord, n)
	}
	if err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || int64(length) > int64(s.max) {
		return nil, fmt.Errorf("%w: record length %d", ErrCorruptRecord, length)
	}
	payload := make([]byte, length)
	n, err = io.ReadFull(s.r, payload)
	s.off += int64(n)
	if err != nil {
		return nil, fmt.Errorf("%w: %d of %d payload bytes", ErrTornRecord, n, length)
	}
	if crc32.Checksum(payload, crcTable) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	s.validOff = s.off
	return payload, nil
}
