package durable

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the journal replay path —
// the framed-record scanner plus segment-level torn-tail repair — and
// holds the recovery invariants:
//
//   - replay never panics, whatever the file contains;
//   - every surfaced record passes its CRC (a corrupt record is
//     truncated away, never returned);
//   - repair is idempotent: a second scan of the repaired file recovers
//     exactly the same records with zero dropped bytes, so a crash loop
//     cannot progressively eat valid data.
func FuzzJournalReplay(f *testing.F) {
	// Seed corpus: a clean two-record segment, a torn tail, a corrupt
	// payload, an all-zero page, and raw garbage.
	var hdr [segHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], journalMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], journalVersion)
	clean := append([]byte{}, hdr[:]...)
	clean = appendFrame(clean, []byte("first record"))
	clean = appendFrame(clean, []byte("second record"))
	f.Add(clean)
	f.Add(clean[:len(clean)-5])
	corrupt := append([]byte{}, clean...)
	corrupt[len(corrupt)-3] ^= 0xff
	f.Add(corrupt)
	f.Add(append(append([]byte{}, hdr[:]...), make([]byte, 64)...))
	f.Add([]byte("complete garbage, not even a header"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("write fuzz segment: %v", err)
		}
		res := scanSegment(OS{}, path, 1<<20, true)
		if res.skipped {
			if len(res.records) != 0 {
				t.Fatalf("skipped segment surfaced %d records", len(res.records))
			}
			return
		}
		for i, rec := range res.records {
			if len(rec) == 0 {
				t.Fatalf("record %d is empty (zero-length records are corrupt by definition)", i)
			}
		}
		// The surfaced records are exactly the file's valid prefix: after
		// repair, re-framing them must reproduce the file byte for byte —
		// which implies every one carried a matching CRC and nothing
		// undecodable survived the truncation.
		rebuilt := append([]byte{}, data[:segHeaderLen]...)
		for _, rec := range res.records {
			rebuilt = appendFrame(rebuilt, rec)
		}
		repaired, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read repaired segment: %v", err)
		}
		if !bytes.Equal(repaired, rebuilt) {
			t.Fatalf("repaired file (%d bytes) != reframed records (%d bytes)", len(repaired), len(rebuilt))
		}
		// Idempotence: rescanning the repaired file yields the same
		// records and no further damage.
		again := scanSegment(OS{}, path, 1<<20, true)
		if again.skipped {
			t.Fatal("repaired segment became unreadable")
		}
		if again.droppedBytes != 0 || again.truncated {
			t.Fatalf("second scan still dropping: %d bytes, truncated=%v", again.droppedBytes, again.truncated)
		}
		if len(again.records) != len(res.records) {
			t.Fatalf("second scan recovered %d records, first %d", len(again.records), len(res.records))
		}
		for i := range again.records {
			if !bytes.Equal(again.records[i], res.records[i]) {
				t.Fatalf("record %d changed across rescans", i)
			}
		}
	})
}
