package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Snapshot file format: a 22-byte header (magic u32 "COPS" | version u16 |
// seq u64 | barrier u64) followed by framed records. A snapshot is
// written to a temporary name, fsynced, then renamed into place — the
// rename is the commit point, so a crash mid-write leaves at most a
// stale .tmp file and never a half-valid snapshot under the real name.
// Loading validates every record; any tear or corruption invalidates the
// whole file and the loader falls back to the previous snapshot.
const (
	snapMagic     = 0x434f5053 // "COPS"
	snapVersion   = 1
	snapHeaderLen = 22
)

// snapName renders the file name of snapshot seq.
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// parseSnapName inverts snapName.
func parseSnapName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "snap-%016x.snap", &seq); err != nil {
		return 0, false
	}
	return seq, name == snapName(seq)
}

// snapshotData is one fully validated snapshot.
type snapshotData struct {
	seq     uint64
	barrier uint64 // journal segment seq active when the snapshot began
	records [][]byte
}

// writeSnapshot writes a snapshot with the given sequence and barrier,
// filling its records through the fill callback (fill calls add once per
// record), and atomically renames it into place. On any failure the
// temporary file is removed and the previous snapshot remains the latest.
func writeSnapshot(fsys FS, dir string, seq, barrier uint64, maxRecord int, fill func(add func([]byte) error) error) (err error) {
	tmp := filepath.Join(dir, snapName(seq)+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot tmp: %w", err)
	}
	committed := false
	defer func() {
		if !committed {
			_ = f.Close()
			_ = fsys.Remove(tmp)
		}
	}()

	var hdr [snapHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], snapVersion)
	binary.LittleEndian.PutUint64(hdr[6:14], seq)
	binary.LittleEndian.PutUint64(hdr[14:22], barrier)
	if _, err := f.Write(hdr[:]); err != nil {
		return fmt.Errorf("durable: snapshot header: %w", err)
	}
	var scratch []byte
	add := func(payload []byte) error {
		if len(payload) == 0 || len(payload) > maxRecord {
			return fmt.Errorf("%w: snapshot record of %d bytes", ErrCorruptRecord, len(payload))
		}
		scratch = appendFrame(scratch[:0], payload)
		if _, werr := f.Write(scratch); werr != nil {
			return fmt.Errorf("durable: snapshot record: %w", werr)
		}
		return nil
	}
	if err := fill(add); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: snapshot close: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, snapName(seq))); err != nil {
		return fmt.Errorf("durable: snapshot rename: %w", err)
	}
	committed = true
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("durable: snapshot dir sync: %w", err)
	}
	return nil
}

// loadSnapshot reads and fully validates one snapshot file; any invalid
// header, torn record or checksum failure rejects the whole file.
func loadSnapshot(fsys FS, path string, maxRecord int) (*snapshotData, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	var hdr [snapHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: snapshot header", ErrTornRecord)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != snapMagic ||
		binary.LittleEndian.Uint16(hdr[4:6]) != snapVersion {
		return nil, fmt.Errorf("%w: snapshot magic", ErrCorruptRecord)
	}
	snap := &snapshotData{
		seq:     binary.LittleEndian.Uint64(hdr[6:14]),
		barrier: binary.LittleEndian.Uint64(hdr[14:22]),
	}
	sc := newRecordScanner(f, snapHeaderLen, maxRecord)
	for {
		payload, err := sc.next()
		if errors.Is(err, io.EOF) {
			return snap, nil
		}
		if err != nil {
			return nil, err
		}
		snap.records = append(snap.records, payload)
	}
}
